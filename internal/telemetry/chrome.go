package telemetry

import (
	"bufio"
	"io"
	"strconv"

	"offloadsim/internal/syscalls"
)

// ChromeSink encodes the trace in the Chrome trace-event format
// (chrome://tracing, and loadable by Perfetto): a per-core timeline of
// OS-execution slices, off-load round trips nesting their queue waits,
// OS-core execution slices, threshold-N counter tracks, and cache
// warm-up instants. Simulated cycles are written as microsecond
// timestamps (1 cycle = 1 "µs"); the viewer's time axis reads as cycles.
//
// The mapping, per event kind:
//
//	os_exit         -> "X" slice on the issuing core (ts = completion - cost)
//	offload_return  -> "X" round-trip slice on the issuing core
//	offload_queue   -> "X" "queue wait" slice nested in the round trip
//	offload_execute -> "X" slice on the OS-core row (tid = UserCores)
//	cache_warm      -> "i" instant on the OS-core row (miss count in args)
//	retune          -> "C" counter sample on "threshold-N core<i>" + "i" instant
//	oscore_enqueue  -> "X" "queue wait" slice on the issuing core
//	oscore_execute  -> "X" slice on the serving OS-core row (tid = UserCores + core)
//	async_return    -> "X" "async reconcile" slice when the issuing core stalled
//
// os_entry, predict and outcome records stay JSONL-only: the slices
// above already render every OS entry, and per-decision predictor detail
// is analysis data, not timeline data.
type ChromeSink struct {
	w     *bufio.Writer
	buf   []byte
	err   error
	first bool
	cores int
}

// NewChromeSink wraps w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: bufio.NewWriter(w)}
}

// Begin opens the JSON document and names the process and thread rows.
func (s *ChromeSink) Begin(meta Meta, dropped uint64) error {
	s.first = true
	s.cores = meta.UserCores
	s.raw(`{"displayTimeUnit":"ms","otherData":{"workload":`)
	s.str(meta.Workload)
	s.raw(`,"policy":`)
	s.str(meta.Policy)
	s.raw(`,"time_unit":"cycle","dropped":`)
	s.int(int64(dropped))
	s.raw(`},"traceEvents":[`)
	s.meta("process_name", 0, -1, "offloadsim")
	for i := 0; i < meta.UserCores; i++ {
		s.meta("thread_name", i, -1, "core "+strconv.Itoa(i))
		s.meta("thread_sort_index", i, i, "")
	}
	switch {
	case meta.OSCores > 1:
		for q := 0; q < meta.OSCores; q++ {
			s.meta("thread_name", meta.UserCores+q, -1, "OS core "+strconv.Itoa(q))
			s.meta("thread_sort_index", meta.UserCores+q, meta.UserCores+q, "")
		}
	case meta.OSCore:
		s.meta("thread_name", meta.UserCores, -1, "OS core")
		s.meta("thread_sort_index", meta.UserCores, meta.UserCores, "")
	}
	return s.err
}

// Event renders one trace record; kinds without a timeline mapping are
// skipped.
func (s *ChromeSink) Event(ev Event) error {
	switch ev.Kind {
	case KindOSExit:
		s.slice(int(ev.Core), ev.Time-ev.Cycles, ev.Cycles, sysName(ev.Sys), "os-local", -1)
	case KindOffloadReturn:
		s.slice(int(ev.Core), ev.Time-ev.Cycles, ev.Cycles, sysName(ev.Sys)+" offload", "offload", -1)
	case KindOffloadQueue:
		if ev.Cycles > 0 {
			s.slice(int(ev.Core), ev.Time, ev.Cycles, "queue wait", "offload", ev.Value)
		}
	case KindOffloadExecute:
		s.slice(s.cores, ev.Time, ev.Cycles, sysName(ev.Sys), "os-core", int64(ev.Core))
	case KindOSCoreEnqueue:
		if ev.Cycles > 0 {
			s.slice(int(ev.Core), ev.Time, ev.Cycles, "queue wait", "offload", ev.Value)
		}
	case KindOSCoreExecute:
		s.slice(s.cores+int(ev.Value), ev.Time, ev.Cycles, sysName(ev.Sys), "os-core", int64(ev.Core))
	case KindAsyncReturn:
		if ev.Cycles > 0 {
			s.slice(int(ev.Core), ev.Time-ev.Cycles, ev.Cycles, "async reconcile", "offload", ev.Value)
		}
	case KindCacheWarm:
		s.open(`"i"`, s.cores, ev.Time)
		s.raw(`,"name":"cache warm","cat":"os-core","s":"t","args":{"misses":`)
		s.int(ev.Value)
		s.raw(`,"core":`)
		s.int(int64(ev.Core))
		s.raw(`}}`)
	case KindRetune:
		s.open(`"C"`, int(ev.Core), ev.Time)
		s.raw(`,"name":"threshold-N core`)
		s.int(int64(ev.Core))
		s.raw(`","args":{"N":`)
		s.int(ev.Value)
		s.raw(`}}`)
		s.open(`"i"`, int(ev.Core), ev.Time)
		s.raw(`,"name":"retune N=`)
		s.int(ev.Value)
		s.raw(`","cat":"tuner","s":"t","args":{}}`)
	}
	return s.err
}

// End closes the document and flushes.
func (s *ChromeSink) End() error {
	s.raw("]}\n")
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// slice emits one complete ("X") event; arg >= 0 adds a source-core (or
// backlog, for queue waits) argument.
func (s *ChromeSink) slice(tid int, ts, dur uint64, name, cat string, arg int64) {
	s.open(`"X"`, tid, ts)
	s.raw(`,"dur":`)
	s.int(int64(dur))
	s.raw(`,"name":`)
	s.str(name)
	s.raw(`,"cat":"` + cat + `"`)
	if arg >= 0 {
		if cat == "offload" {
			s.raw(`,"args":{"backlog":`)
		} else {
			s.raw(`,"args":{"core":`)
		}
		s.int(arg)
		s.raw(`}`)
	}
	s.raw(`}`)
}

// open starts one event object with the shared ph/pid/tid/ts prefix.
func (s *ChromeSink) open(ph string, tid int, ts uint64) {
	if !s.first {
		s.raw(",\n")
	} else {
		s.first = false
	}
	s.raw(`{"ph":` + ph + `,"pid":0,"tid":`)
	s.int(int64(tid))
	s.raw(`,"ts":`)
	s.int(int64(ts))
}

// meta emits one "M" metadata event: a name for sortIndex < 0, a
// sort_index otherwise.
func (s *ChromeSink) meta(kind string, tid, sortIndex int, name string) {
	s.open(`"M"`, tid, 0)
	s.raw(`,"name":"` + kind + `","args":{`)
	if sortIndex >= 0 {
		s.raw(`"sort_index":`)
		s.int(int64(sortIndex))
	} else {
		s.raw(`"name":`)
		s.str(name)
	}
	s.raw(`}}`)
}

func (s *ChromeSink) raw(str string) {
	if s.err == nil {
		_, s.err = s.w.WriteString(str)
	}
}

func (s *ChromeSink) int(v int64) {
	if s.err == nil {
		s.buf = strconv.AppendInt(s.buf[:0], v, 10)
		_, s.err = s.w.Write(s.buf)
	}
}

func (s *ChromeSink) str(v string) {
	if s.err == nil {
		s.buf = strconv.AppendQuote(s.buf[:0], v)
		_, s.err = s.w.Write(s.buf)
	}
}

// sysName resolves a trace record's syscall/trap id to its display name.
func sysName(sys int32) string {
	if sys < 0 {
		return "os"
	}
	return syscalls.ID(sys).String()
}
