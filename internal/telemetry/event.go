package telemetry

import "fmt"

// Kind enumerates the structured trace events the simulator emits. Each
// kind documents which payload fields it populates; unused fields are
// zero and omitted from the JSONL encoding.
type Kind uint8

const (
	// KindOSEntry marks a transition to privileged mode on a user core.
	// Time is the core clock at entry; Sys and Instrs describe the
	// invocation.
	KindOSEntry Kind = iota + 1
	// KindPredict records the policy verdict for one OS entry: Pred is
	// the predicted run length, Offload the verdict, Global whether the
	// prediction fell back to the global average, Cycles the decision
	// overhead charged to the user core.
	KindPredict
	// KindOSExit marks an OS invocation completing locally on its user
	// core. Time is the completion clock; Cycles the execution cost.
	KindOSExit
	// KindOffloadDispatch marks an off-load leaving the user core. Time
	// is the dispatch clock (after decision overhead); Cycles the
	// one-way migration latency.
	KindOffloadDispatch
	// KindOffloadQueue records the reservation-queue wait at the OS
	// core. Time is the arrival cycle, Cycles the wait endured, Value
	// the number of OS-core contexts still busy at arrival (queue
	// depth seen by this request).
	KindOffloadQueue
	// KindOffloadExecute marks the invocation executing on the OS core.
	// Time is the execution start cycle; Cycles the execution cost.
	KindOffloadExecute
	// KindCacheWarm records the cache warm-up cost of one migrated
	// invocation: Value is the number of OS-core cache misses (L1 plus
	// private L2) suffered while executing it. Time matches the
	// corresponding KindOffloadExecute.
	KindCacheWarm
	// KindOffloadReturn marks the off-load round trip completing on the
	// issuing user core. Time is the user-core clock at return; Cycles
	// the full round trip (out-migration, queue wait, execution,
	// return migration).
	KindOffloadReturn
	// KindOutcome records the ground truth after an OS invocation
	// retires: Instrs is the actual run length, Pred the prediction it
	// is scored against, Value the signed error (actual - predicted),
	// Offload the decision that was taken.
	KindOutcome
	// KindRetune marks a dynamic-N epoch boundary installing a new
	// threshold on a core: Value is the threshold now live.
	KindRetune
	// KindOSCoreEnqueue records a multi-OS-core off-load entering its
	// routed queue (internal/oscore). Time is the arrival cycle, Cycles
	// the queue wait endured, Value the busy-context count the request
	// observed at arrival.
	KindOSCoreEnqueue
	// KindOSCoreExecute marks the invocation executing on one core of
	// the OS cluster. Time is the execution start cycle, Cycles the
	// speed-scaled execution cost, Value the serving OS core's index.
	KindOSCoreExecute
	// KindAsyncReturn marks a fire-and-forget off-load's return
	// descriptor being reconciled on the issuing core. Time is the
	// user-core clock after reconciliation, Cycles the stall it cost
	// (0 when the return had already landed), Value the serving OS
	// core's index. Sys is -1: the descriptor does not carry the
	// original invocation.
	KindAsyncReturn

	numKinds
)

// kindNames are the wire names used by the JSONL encoder (stable API;
// docs/TELEMETRY.md documents them).
var kindNames = [numKinds]string{
	KindOSEntry:         "os_entry",
	KindPredict:         "predict",
	KindOSExit:          "os_exit",
	KindOffloadDispatch: "offload_dispatch",
	KindOffloadQueue:    "offload_queue",
	KindOffloadExecute:  "offload_execute",
	KindCacheWarm:       "cache_warm",
	KindOffloadReturn:   "offload_return",
	KindOutcome:         "outcome",
	KindRetune:          "retune",
	KindOSCoreEnqueue:   "oscore_enqueue",
	KindOSCoreExecute:   "oscore_execute",
	KindAsyncReturn:     "async_return",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k > 0 && k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindByName resolves a wire name back to its Kind; false for unknown
// names.
func KindByName(s string) (Kind, bool) {
	for k := Kind(1); k < numKinds; k++ {
		if kindNames[k] == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one fixed-size trace record. Events are recorded into
// per-core rings and merged in (Time, Core, Seq) order, which makes the
// merged stream — and every encoding of it — a pure function of the
// simulation configuration, independent of GOMAXPROCS and the parallel
// engine's Workers setting.
type Event struct {
	// Time is the issuing core's simulated clock in cycles. Off-load
	// events carry the timeline position of the phase they describe
	// (arrival, execution start, return) rather than the issue clock.
	Time uint64
	// Core is the issuing user core index.
	Core int32
	// Seq is the per-core emission sequence number; it breaks ties
	// between events of one core sharing a Time.
	Seq  uint32
	Kind Kind
	// Offload carries the decision verdict (predict/outcome events).
	Offload bool
	// Global marks a prediction served by the global last-3 fallback
	// instead of a confident table entry (predict events).
	Global bool
	// Sys is the syscall/trap identifier of the OS invocation; -1 when
	// not applicable (retune events).
	Sys int32
	// Instrs is the invocation's instruction count where known.
	Instrs int32
	// Pred is the predicted run length (predict/outcome events).
	Pred int32
	// Cycles is the kind-specific duration documented on each Kind.
	Cycles uint64
	// Value is the kind-specific payload documented on each Kind.
	Value int64
}
