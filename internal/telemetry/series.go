package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// IntervalPoint is one sample of the interval time-series: the headline
// metrics of the simulation over one cadence window of the measurement
// phase. All counts are deltas over the window; rates and utilizations
// are computed over the window alone.
type IntervalPoint struct {
	// Index is the point's position in the series.
	Index int
	// EndInstrs is the per-core measurement progress (max across user
	// cores, in retired instructions) at the window's end.
	EndInstrs uint64
	// Instrs is the workload instructions retired across user cores in
	// the window; Cycles the largest per-core elapsed cycle count.
	Instrs uint64
	Cycles uint64
	// Throughput is the sum of per-core IPC over the window.
	Throughput float64
	// Cache behaviour over the window.
	UserL2HitRate  float64
	UserL1DHitRate float64
	OSL2HitRate    float64
	// OSCoreUtilization is OS-core busy cycles over the window's elapsed
	// capacity; QueueDepth is the time-averaged number of off-loads
	// waiting for an OS-core context (queue-delay cycles accumulated per
	// elapsed cycle); MeanQueueDelay the window's mean wait.
	OSCoreUtilization float64
	QueueDepth        float64
	MeanQueueDelay    float64
	// Off-loading activity in the window.
	OSEntries uint64
	Offloads  uint64
	// LiveN is core 0's off-load threshold at the window's end — the
	// trail of the §III-B dynamic tuner (constant for static-N runs).
	LiveN int
}

// seriesColumns is the CSV header, in the exact column order
// WriteSeriesCSV emits.
var seriesColumns = []string{
	"index", "end_instrs", "instrs", "cycles", "throughput",
	"user_l2_hit_rate", "user_l1d_hit_rate", "os_l2_hit_rate",
	"os_core_utilization", "queue_depth", "mean_queue_delay",
	"os_entries", "offloads", "live_n",
}

// WriteSeriesCSV renders the time-series as CSV with a fixed header.
// Floats print via strconv 'g' at full precision, so the bytes are a
// pure function of the values.
func WriteSeriesCSV(w io.Writer, series []IntervalPoint) error {
	for i, c := range seriesColumns {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, c); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	var buf []byte
	for i := range series {
		p := &series[i]
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(p.Index), 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, p.EndInstrs, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, p.Instrs, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, p.Cycles, 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.Throughput, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.UserL2HitRate, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.UserL1DHitRate, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.OSL2HitRate, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.OSCoreUtilization, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.QueueDepth, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.MeanQueueDelay, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, p.OSEntries, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, p.Offloads, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(p.LiveN), 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// SeriesFileName names a sweep point's time-series CSV.
func SeriesFileName(workload, policy string, threshold, oneWay int) string {
	return fmt.Sprintf("%s_%s_n%d_lat%d.csv", workload, policy, threshold, oneWay)
}
