package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func testMeta() Meta {
	return Meta{Workload: "apache", Policy: "HI", Threshold: 1000, UserCores: 2, OSCore: true, Seed: 1}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Fatal("empty options must be invalid")
	}
	if err := (Options{Events: true, RingEvents: -1}).Validate(); err == nil {
		t.Fatal("negative RingEvents must be invalid")
	}
	if err := (Options{Events: true}).Validate(); err != nil {
		t.Fatalf("events-only options: %v", err)
	}
	if err := (Options{IntervalInstrs: 1000}).Validate(); err != nil {
		t.Fatalf("series-only options: %v", err)
	}
}

func TestTracerDisarmedDropsEvents(t *testing.T) {
	tr := MustNew(Options{Events: true}, 2, testMeta())
	tr.Emit(0, Event{Time: 1, Kind: KindOSEntry, Sys: 3})
	tr.Arm()
	tr.Emit(0, Event{Time: 2, Kind: KindOSEntry, Sys: 3})
	c := tr.Capture()
	if len(c.Events) != 1 || c.Events[0].Time != 2 {
		t.Fatalf("want only the armed event, got %+v", c.Events)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Arm()
	tr.Emit(0, Event{Kind: KindOSEntry})
	tr.RecordInterval(IntervalPoint{})
	if tr.EventsEnabled() || tr.IntervalInstrs() != 0 {
		t.Fatal("nil tracer must report disabled")
	}
	if tr.Capture() != nil {
		t.Fatal("nil tracer capture must be nil")
	}
}

func TestCaptureMergeOrder(t *testing.T) {
	tr := MustNew(Options{Events: true}, 3, testMeta())
	tr.Arm()
	tr.Emit(2, Event{Time: 5, Kind: KindOSEntry, Sys: 1})
	tr.Emit(0, Event{Time: 9, Kind: KindOSEntry, Sys: 1})
	tr.Emit(0, Event{Time: 9, Kind: KindOSExit, Sys: 1})
	tr.Emit(1, Event{Time: 9, Kind: KindOSEntry, Sys: 1})
	tr.Emit(1, Event{Time: 2, Kind: KindOSEntry, Sys: 1})
	c := tr.Capture()
	var got [][3]uint64
	for _, ev := range c.Events {
		got = append(got, [3]uint64{ev.Time, uint64(ev.Core), uint64(ev.Seq)})
	}
	want := [][3]uint64{{2, 1, 1}, {5, 2, 0}, {9, 0, 0}, {9, 0, 1}, {9, 1, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order mismatch:\n got %v\nwant %v", got, want)
	}
	if c.Dropped != 0 {
		t.Fatalf("unexpected drops: %d", c.Dropped)
	}
}

func TestRingOverflowKeepsTail(t *testing.T) {
	tr := MustNew(Options{Events: true, RingEvents: 4}, 1, testMeta())
	tr.Arm()
	for i := 0; i < 10; i++ {
		tr.Emit(0, Event{Time: uint64(i), Kind: KindOSEntry, Sys: 0})
	}
	c := tr.Capture()
	if c.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", c.Dropped)
	}
	if len(c.Events) != 4 {
		t.Fatalf("kept = %d, want 4", len(c.Events))
	}
	for i, ev := range c.Events {
		if want := uint64(6 + i); ev.Time != want || uint64(ev.Seq) != want {
			t.Fatalf("event %d = %+v, want time/seq %d", i, ev, want)
		}
	}
}

// sampleCapture builds a capture exercising every event kind.
func sampleCapture() *Capture {
	tr := MustNew(Options{Events: true}, 2, testMeta())
	tr.Arm()
	tr.Emit(0, Event{Time: 10, Kind: KindOSEntry, Sys: 4, Instrs: 900})
	tr.Emit(0, Event{Time: 10, Kind: KindPredict, Sys: 4, Instrs: 900, Pred: 1200, Offload: true, Global: false, Cycles: 1})
	tr.Emit(0, Event{Time: 11, Kind: KindOffloadDispatch, Sys: 4, Cycles: 100})
	tr.Emit(0, Event{Time: 111, Kind: KindOffloadQueue, Sys: 4, Cycles: 40, Value: 1})
	tr.Emit(0, Event{Time: 151, Kind: KindOffloadExecute, Sys: 4, Cycles: 1100})
	tr.Emit(0, Event{Time: 151, Kind: KindCacheWarm, Sys: 4, Value: 17})
	tr.Emit(0, Event{Time: 1451, Kind: KindOffloadReturn, Sys: 4, Cycles: 1340})
	tr.Emit(0, Event{Time: 1451, Kind: KindOutcome, Sys: 4, Instrs: 900, Pred: 1200, Offload: true, Value: -300})
	tr.Emit(1, Event{Time: 20, Kind: KindOSEntry, Sys: 2, Instrs: 50})
	tr.Emit(1, Event{Time: 70, Kind: KindOSExit, Sys: 2, Cycles: 60})
	tr.Emit(1, Event{Time: 90, Kind: KindRetune, Sys: -1, Value: 2500})
	tr.RecordInterval(IntervalPoint{Instrs: 1000, Cycles: 1500, Throughput: 0.66, LiveN: 1000})
	return tr.Capture()
}

func TestJSONLRoundTrip(t *testing.T) {
	c := sampleCapture()
	var buf bytes.Buffer
	if err := Export(c, NewJSONLSink(&buf)); err != nil {
		t.Fatalf("export: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Meta != c.Meta {
		t.Fatalf("meta mismatch: %+v vs %+v", got.Meta, c.Meta)
	}
	if !reflect.DeepEqual(got.Events, c.Events) {
		t.Fatalf("events did not round-trip:\n got %+v\nwant %+v", got.Events, c.Events)
	}
}

func TestJSONLLinesAreValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(sampleCapture(), NewJSONLSink(&buf)); err != nil {
		t.Fatalf("export: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Meta header + 11 events.
	if len(lines) != 12 {
		t.Fatalf("got %d lines, want 12", len(lines))
	}
	for i, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("line %d is not valid JSON: %s", i, ln)
		}
	}
}

func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(sampleCapture(), NewChromeSink(&buf)); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	var slices, counters, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "C":
			counters++
		case "i":
			instants++
		}
	}
	// os_exit + offload_return + queue wait + offload_execute.
	if slices != 4 {
		t.Errorf("slices = %d, want 4", slices)
	}
	if counters != 1 {
		t.Errorf("counter events = %d, want 1 (retune)", counters)
	}
	// cache_warm + retune instant.
	if instants != 2 {
		t.Errorf("instants = %d, want 2", instants)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	series := []IntervalPoint{
		{Index: 0, EndInstrs: 50000, Instrs: 99000, Cycles: 140000, Throughput: 1.4142,
			UserL2HitRate: 0.9, UserL1DHitRate: 0.95, OSL2HitRate: 0.5,
			OSCoreUtilization: 0.25, QueueDepth: 0.01, MeanQueueDelay: 12.5,
			OSEntries: 120, Offloads: 30, LiveN: 1000},
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series); err != nil {
		t.Fatalf("write: %v", err)
	}
	want := "index,end_instrs,instrs,cycles,throughput,user_l2_hit_rate,user_l1d_hit_rate,os_l2_hit_rate,os_core_utilization,queue_depth,mean_queue_delay,os_entries,offloads,live_n\n" +
		"0,50000,99000,140000,1.4142,0.9,0.95,0.5,0.25,0.01,12.5,120,30,1000\n"
	if buf.String() != want {
		t.Fatalf("csv mismatch:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		name := k.String()
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Fatalf("kind %d name %q does not round-trip", k, name)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Fatal("bogus name resolved")
	}
}
