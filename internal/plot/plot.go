// Package plot renders small ASCII line charts for the experiment
// runners, so the figure-shaped results (Figure 4's threshold sweeps, the
// tuner trajectory) can be eyeballed directly in a terminal without any
// plotting dependency.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Values []float64
}

// markers distinguish up to eight series.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart is a multi-series line chart over a shared categorical X axis.
type Chart struct {
	Title   string
	YLabel  string
	XLabels []string
	Series  []Series

	// Height is the plot-area height in rows (default 12).
	Height int
	// Width is the plot-area width in columns (default: 6 per X point,
	// min 40).
	Width int
}

// bounds computes the Y range across all series, padded slightly.
func (c *Chart) bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	return lo - pad, hi + pad
}

// Render writes the chart. Invalid charts (no series/points) render a
// placeholder line rather than failing, since they appear inside larger
// reports.
func (c *Chart) Render(w io.Writer) {
	if len(c.Series) == 0 || len(c.XLabels) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return
	}
	height := c.Height
	if height <= 0 {
		height = 12
	}
	width := c.Width
	if width <= 0 {
		width = len(c.XLabels) * 8
		if width < 40 {
			width = 40
		}
	}
	lo, hi := c.bounds()

	// grid[row][col], row 0 = top.
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	colFor := func(i int) int {
		if len(c.XLabels) == 1 {
			return 0
		}
		return i * (width - 1) / (len(c.XLabels) - 1)
	}
	rowFor := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := height - 1 - int(math.Round(frac*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		prevCol, prevRow := -1, -1
		for i, v := range s.Values {
			if i >= len(c.XLabels) || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			col, row := colFor(i), rowFor(v)
			// Connect to the previous point with light interpolation.
			if prevCol >= 0 {
				steps := col - prevCol
				for k := 1; k < steps; k++ {
					ic := prevCol + k
					ir := prevRow + (row-prevRow)*k/steps
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			grid[row][col] = m
			prevCol, prevRow = col, row
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	axisW := 9
	for r := 0; r < height; r++ {
		// Y tick at top, middle, bottom.
		label := strings.Repeat(" ", axisW)
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3f ", hi)
		case height / 2:
			label = fmt.Sprintf("%8.3f ", (hi+lo)/2)
		case height - 1:
			label = fmt.Sprintf("%8.3f ", lo)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", axisW), strings.Repeat("-", width))

	// X labels, spread across the width.
	xrow := make([]rune, width+1)
	for i := range xrow {
		xrow[i] = ' '
	}
	for i, lbl := range c.XLabels {
		col := colFor(i)
		// Right-shift labels that would run off the edge so the last
		// tick stays fully readable.
		if col+len(lbl) > len(xrow) {
			col = len(xrow) - len(lbl)
			if col < 0 {
				col = 0
			}
		}
		for k, ch := range lbl {
			pos := col + k
			if pos < len(xrow) {
				xrow[pos] = ch
			}
		}
	}
	fmt.Fprintf(w, "%s %s\n", strings.Repeat(" ", axisW), strings.TrimRight(string(xrow), " "))

	// Legend.
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "%s %s\n", strings.Repeat(" ", axisW), strings.Join(legend, "   "))
	if c.YLabel != "" {
		fmt.Fprintf(w, "%s y: %s\n", strings.Repeat(" ", axisW), c.YLabel)
	}
	fmt.Fprintln(w)
}
