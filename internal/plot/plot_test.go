package plot

import (
	"bytes"
	"strings"
	"testing"
)

func render(c *Chart) string {
	var buf bytes.Buffer
	c.Render(&buf)
	return buf.String()
}

func TestEmptyChart(t *testing.T) {
	out := render(&Chart{Title: "empty"})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart rendered %q", out)
	}
}

func TestSingleSeries(t *testing.T) {
	c := &Chart{
		Title:   "throughput",
		XLabels: []string{"0", "100", "1000"},
		Series:  []Series{{Name: "lat=0", Values: []float64{1.0, 1.5, 1.2}}},
	}
	out := render(c)
	if !strings.Contains(out, "throughput") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "lat=0") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing markers")
	}
	for _, lbl := range []string{"0", "100", "1000"} {
		if !strings.Contains(out, lbl) {
			t.Fatalf("missing x label %q", lbl)
		}
	}
}

func TestMarkerPlacementExtremes(t *testing.T) {
	c := &Chart{
		XLabels: []string{"a", "b"},
		Series:  []Series{{Name: "s", Values: []float64{0, 10}}},
		Height:  5,
		Width:   20,
	}
	out := render(c)
	lines := strings.Split(out, "\n")
	// Row 0 (top) holds the max; row 4 holds the min.
	if !strings.Contains(lines[0], "*") {
		t.Fatalf("max not on top row: %q", lines[0])
	}
	if !strings.Contains(lines[4], "*") {
		t.Fatalf("min not on bottom row: %q", lines[4])
	}
}

func TestMultipleSeriesDistinctMarkers(t *testing.T) {
	c := &Chart{
		XLabels: []string{"1", "2", "3"},
		Series: []Series{
			{Name: "a", Values: []float64{1, 2, 3}},
			{Name: "b", Values: []float64{3, 2, 1}},
		},
	}
	out := render(c)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("series markers not distinct")
	}
}

func TestYAxisTicks(t *testing.T) {
	c := &Chart{
		XLabels: []string{"1", "2"},
		Series:  []Series{{Name: "s", Values: []float64{2, 4}}},
		Height:  7,
	}
	out := render(c)
	// Padded bounds: lo = 2 - 0.1, hi = 4 + 0.1.
	if !strings.Contains(out, "4.100") || !strings.Contains(out, "1.900") {
		t.Fatalf("missing Y ticks:\n%s", out)
	}
}

func TestFlatSeriesDoesNotDivideByZero(t *testing.T) {
	c := &Chart{
		XLabels: []string{"1", "2", "3"},
		Series:  []Series{{Name: "flat", Values: []float64{5, 5, 5}}},
	}
	out := render(c) // must not panic
	if !strings.Contains(out, "*") {
		t.Fatal("flat series lost its markers")
	}
}

func TestNaNValuesSkipped(t *testing.T) {
	nan := 0.0
	nan /= nan
	c := &Chart{
		XLabels: []string{"1", "2", "3"},
		Series:  []Series{{Name: "s", Values: []float64{1, nan, 2}}},
	}
	out := render(c) // must not panic
	if !strings.Contains(out, "*") {
		t.Fatal("valid points lost")
	}
}

func TestYLabelPrinted(t *testing.T) {
	c := &Chart{
		XLabels: []string{"1"},
		Series:  []Series{{Name: "s", Values: []float64{1}}},
		YLabel:  "normalized IPC",
	}
	if !strings.Contains(render(c), "normalized IPC") {
		t.Fatal("missing y label")
	}
}
