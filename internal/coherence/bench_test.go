package coherence_test

import (
	"testing"

	"offloadsim/internal/coherence"
	"offloadsim/internal/enginebench"
)

// BenchmarkDirectoryMiss covers the miss-service path: L2 miss ->
// directory transaction -> memory fill, including directory entry
// creation and retirement as lines enter and leave the caches.
func BenchmarkDirectoryMiss(b *testing.B) { enginebench.DirectoryMiss(b) }

// BenchmarkDirectoryLookup covers the steady-state directory
// transaction: ownership ping-pong over a fixed line set, no entry
// churn. Must report 0 allocs/op.
func BenchmarkDirectoryLookup(b *testing.B) { enginebench.DirectoryLookup(b) }

// BenchmarkCheckInvariants pins the allocation behaviour of the
// invariant checker: the per-line presence gathering must reuse the
// system's scratch storage instead of rebuilding a map per call.
func BenchmarkCheckInvariants(b *testing.B) {
	sys := coherence.MustNew(coherence.DefaultConfig(), nil)
	for la := uint64(0); la < 4096; la++ {
		sys.Read(int(la)&1, la)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.CheckInvariants(); err != nil {
			b.Fatal(err)
		}
	}
}
