// Quantum-epoch support for the parallel detailed engine (docs/PARALLEL.md).
//
// During one quantum every simulated core runs against a frozen view of
// the shared coherence state: the directory is read-only, remote L2
// arrays are never touched, and each core drives a private EpochPort
// instead of the System. The port classifies every L2 miss from the
// epoch-start directory contents alone, composes the same latency terms
// the serial protocol would (fabric hops, directory lookup, memory
// fill, cache-to-cache forward), mutates only node-private state (own
// L2, own L1s via back-invalidation, private counter deltas), and logs
// each cross-core interaction into a per-port event buffer.
//
// At the quantum barrier ReconcileEpoch runs serially: it merges the
// counter deltas in fixed node order, sorts the union of all event logs
// by (timestamp, node, sequence) and replays them chronologically
// against the real directory and L2 arrays — invalidating stale remote
// copies, downgrading dirty owners, accounting the invalidation and
// writeback traffic — and finally repairs every touched line so the
// directory invariants (CheckInvariants) hold exactly before the next
// quantum begins. Everything here is deterministic at any worker count:
// the quantum execution depends only on per-core private state plus the
// frozen snapshot, and the barrier passes run in one fixed order.
package coherence

import (
	"slices"

	"offloadsim/internal/cache"
	"offloadsim/internal/interconnect"
	"offloadsim/internal/memory"
)

// Port is the memory-system interface a core drives: the shared System
// in serial mode, or a node-private EpochPort during a parallel
// quantum. System implements Port.
type Port interface {
	Read(node int, lineAddr uint64) (latency int, hit bool)
	Write(node int, lineAddr uint64) (latency int, hit bool)
}

var (
	_ Port = (*System)(nil)
	_ Port = (*EpochPort)(nil)
)

// epochKind classifies one buffered cross-core event.
type epochKind uint8

const (
	epochRead epochKind = iota
	epochWrite
	epochVictim
)

// epochEvent is one logged interaction, ordered globally by
// (time, node, seq). time is the issuing core's clock at the start of
// the segment that produced the event; seq disambiguates events within
// a port, so the total order is independent of worker scheduling.
type epochEvent struct {
	time        uint64
	line        uint64
	seq         uint32
	node        int16
	kind        epochKind
	victimState cache.State
}

// EpochPort is one node's private window onto the memory system for the
// duration of a quantum. It must only be used by one goroutine at a
// time, and ReconcileEpoch must be called (serially, with no ports
// active) before any serial-path System access.
type EpochPort struct {
	sys    *System
	node   int
	l2     *cache.Cache
	fabric *interconnect.Local
	mem    *memory.Local

	now    uint64
	seq    uint32
	events []epochEvent
	stats  Stats
}

// NewEpochPort builds the quantum port for node.
func (s *System) NewEpochPort(node int) *EpochPort {
	return &EpochPort{
		sys:    s,
		node:   node,
		l2:     s.l2s[node],
		fabric: s.fabric.NewLocal(),
		mem:    s.mem.NewLocal(),
	}
}

// SetTime stamps subsequently logged events with the issuing core's
// current clock. Called once per segment; intra-segment events share the
// timestamp and are ordered by sequence number.
func (p *EpochPort) SetTime(now uint64) { p.now = now }

func (p *EpochPort) log(k epochKind, line uint64, vs cache.State) {
	p.events = append(p.events, epochEvent{
		time: p.now, line: line, seq: p.seq, node: int16(p.node),
		kind: k, victimState: vs,
	})
	p.seq++
}

// victim handles an own-L2 eviction during the quantum: inclusion is
// node-private (back-invalidate own L1s immediately); the directory
// side resolves at the barrier.
func (p *EpochPort) victim(v cache.Victim) {
	p.sys.backInvalidate(p.node, v.LineAddr)
	p.log(epochVictim, v.LineAddr, v.State)
}

// invLatency returns the parallel-invalidation round trip the serial
// protocol charges when any other node holds the line — judged here
// from the epoch-start directory. The invalidation messages themselves
// are accounted at the barrier, when they actually resolve against the
// serialized state.
func (p *EpochPort) invLatency(e *dirEntry) int {
	if e == nil {
		return 0
	}
	others := false
	switch e.state {
	case dirShared, dirOwned:
		others = e.sharers&^(1<<uint(p.node)) != 0
	case dirExclusive:
		others = int(e.owner) != p.node
	}
	if !others {
		return 0
	}
	return 2 * (p.sys.cfg.Fabric.RouterLatency + p.sys.cfg.Fabric.LinkLatency)
}

// remoteOwner reports whether the frozen entry records another node's
// exclusive or owned copy. A self-owned record with the local copy
// missing means this node evicted the line earlier in the quantum; the
// refill is classified as a memory fill, exactly what the serial
// protocol would see after the victim's directory update.
func (p *EpochPort) remoteOwner(e *dirEntry) bool {
	return e != nil && (e.state == dirExclusive || e.state == dirOwned) &&
		int(e.owner) != p.node
}

// Read performs a quantum-local coherent read. The node argument is
// carried only to satisfy Port; the port is bound to its node.
func (p *EpochPort) Read(_ int, lineAddr uint64) (int, bool) {
	l2 := p.l2
	l2.Stats.Accesses.Inc()
	if st := l2.Probe(lineAddr); st != cache.Invalid {
		l2.Stats.Hits.Inc()
		return l2.Config().HitLatency, true
	}
	l2.Stats.Misses.Inc()

	lat := l2.Config().HitLatency
	lat += p.fabric.Send(interconnect.ReqMsg, 1)
	lat += p.sys.cfg.DirectoryLatency
	p.stats.DirLookups.Inc()

	e := p.sys.dir.get(lineAddr)
	fill := cache.Shared
	switch {
	case p.remoteOwner(e):
		// Cache-to-cache forward from the recorded owner. Whether the
		// supply is dirty is only known at the barrier; DirtyC2C is
		// counted there.
		lat += p.fabric.Send(interconnect.FwdMsg, 1)
		lat += p.sys.l2s[e.owner].Config().HitLatency
		lat += p.fabric.Send(interconnect.DataMsg, 1)
		p.stats.C2CTransfers.Inc()
		p.stats.CoherenceMisses.Inc()
	case e != nil && e.state == dirShared:
		lat += p.mem.Read()
		p.stats.MemoryFills.Inc()
		lat += p.fabric.Send(interconnect.DataMsg, 1)
	default:
		// Untracked, uncached, or tracked to this node's own since-evicted
		// copy: memory supplies the line exclusively.
		lat += p.mem.Read()
		p.stats.MemoryFills.Inc()
		lat += p.fabric.Send(interconnect.DataMsg, 1)
		fill = cache.Exclusive
	}

	p.log(epochRead, lineAddr, cache.Invalid)
	if v, evicted := l2.Allocate(lineAddr, fill); evicted {
		p.victim(v)
	}
	return lat, false
}

// Write performs a quantum-local coherent write.
func (p *EpochPort) Write(_ int, lineAddr uint64) (int, bool) {
	l2 := p.l2
	l2.Stats.Accesses.Inc()
	switch l2.Probe(lineAddr) {
	case cache.Modified:
		l2.Stats.Hits.Inc()
		return l2.Config().HitLatency, true
	case cache.Exclusive:
		// Silent E->M upgrade, as in the serial protocol.
		l2.Stats.Hits.Inc()
		l2.SetState(lineAddr, cache.Modified)
		return l2.Config().HitLatency, true
	case cache.Shared, cache.Owned:
		// Upgrade miss: charge the serial path's directory transaction and
		// parallel invalidation round trip; the invalidations themselves
		// land at the barrier.
		l2.Stats.Misses.Inc()
		p.stats.UpgradeMisses.Inc()
		lat := l2.Config().HitLatency
		lat += p.fabric.Send(interconnect.ReqMsg, 1)
		lat += p.sys.cfg.DirectoryLatency
		p.stats.DirLookups.Inc()
		lat += p.invLatency(p.sys.dir.get(lineAddr))
		l2.SetState(lineAddr, cache.Modified)
		p.log(epochWrite, lineAddr, cache.Invalid)
		return lat, false
	}
	// Write miss.
	l2.Stats.Misses.Inc()
	lat := l2.Config().HitLatency
	lat += p.fabric.Send(interconnect.ReqMsg, 1)
	lat += p.sys.cfg.DirectoryLatency
	p.stats.DirLookups.Inc()

	e := p.sys.dir.get(lineAddr)
	switch {
	case p.remoteOwner(e) && e.state == dirExclusive:
		lat += p.fabric.Send(interconnect.FwdMsg, 1)
		lat += p.sys.l2s[e.owner].Config().HitLatency
		lat += p.fabric.Send(interconnect.DataMsg, 1)
		p.stats.C2CTransfers.Inc()
		p.stats.CoherenceMisses.Inc()
	case p.remoteOwner(e): // dirOwned
		lat += p.fabric.Send(interconnect.FwdMsg, 1)
		lat += p.sys.l2s[e.owner].Config().HitLatency
		lat += p.invLatency(e)
		lat += p.fabric.Send(interconnect.DataMsg, 1)
		p.stats.C2CTransfers.Inc()
		p.stats.CoherenceMisses.Inc()
	case e != nil && e.state == dirShared:
		lat += p.invLatency(e)
		lat += p.mem.Read()
		p.stats.MemoryFills.Inc()
		lat += p.fabric.Send(interconnect.DataMsg, 1)
		p.stats.CoherenceMisses.Inc()
	default:
		lat += p.mem.Read()
		p.stats.MemoryFills.Inc()
		lat += p.fabric.Send(interconnect.DataMsg, 1)
	}

	p.log(epochWrite, lineAddr, cache.Invalid)
	if v, evicted := l2.Allocate(lineAddr, cache.Modified); evicted {
		p.victim(v)
	}
	return lat, false
}

// mergeStats folds one port's protocol-counter deltas into the shared
// totals and clears them.
func (s *System) mergeStats(st *Stats) {
	s.Stats.DirLookups.Add(st.DirLookups.Value())
	s.Stats.C2CTransfers.Add(st.C2CTransfers.Value())
	s.Stats.DirtyC2C.Add(st.DirtyC2C.Value())
	s.Stats.Invalidations.Add(st.Invalidations.Value())
	s.Stats.UpgradeMisses.Add(st.UpgradeMisses.Value())
	s.Stats.MemoryFills.Add(st.MemoryFills.Value())
	s.Stats.CoherenceMisses.Add(st.CoherenceMisses.Value())
	*st = Stats{}
}

// ReconcileEpoch merges one quantum's buffered effects into the shared
// system. It must run with no port active. The order is fixed: counter
// deltas in port (node) order, then chronological event replay, then
// the per-line invariant fix-up — so the post-barrier state is a pure
// function of the ports' contents, independent of worker scheduling.
func (s *System) ReconcileEpoch(ports []*EpochPort) {
	for _, p := range ports {
		s.mergeStats(&p.stats)
		s.fabric.Merge(p.fabric)
		s.mem.Merge(p.mem)
	}
	s.epochEvents = s.epochEvents[:0]
	for _, p := range ports {
		s.epochEvents = append(s.epochEvents, p.events...)
		p.events = p.events[:0]
		p.seq = 0
	}
	evs := s.epochEvents
	slices.SortFunc(evs, func(a, b epochEvent) int {
		if a.time != b.time {
			if a.time < b.time {
				return -1
			}
			return 1
		}
		if a.node != b.node {
			return int(a.node) - int(b.node)
		}
		if a.seq != b.seq {
			if a.seq < b.seq {
				return -1
			}
			return 1
		}
		return 0
	})
	for i := range evs {
		s.applyEpochEvent(&evs[i])
	}
	s.fixupEpochLines(evs)
}

// applyEpochEvent replays one buffered event against the real directory
// and L2 arrays. Latency was already charged during the quantum; replay
// performs the state transitions the serialized order implies and
// accounts the traffic only the resolved state can reveal
// (invalidations, dirty supplies, writebacks). Presence checks guard
// every remote mutation: the L2 arrays hold end-of-quantum contents, so
// a recorded holder may already have evicted the line.
func (s *System) applyEpochEvent(ev *epochEvent) {
	switch ev.kind {
	case epochVictim:
		s.applyEpochVictim(int(ev.node), ev.line, ev.victimState)
	case epochRead:
		s.applyEpochRead(int(ev.node), ev.line)
	case epochWrite:
		s.applyEpochWrite(int(ev.node), ev.line)
	}
}

// demoteToShared forces node's present copy of line to Shared. Used
// when replay joins a node to a sharer set while its private copy holds
// a stronger state; a later write event by the same node re-establishes
// Modified in its turn.
func (s *System) demoteToShared(node int, line uint64) {
	if st := s.l2s[node].Lookup(line); st != cache.Invalid && st != cache.Shared {
		s.l2s[node].SetState(line, cache.Shared)
	}
}

func (s *System) applyEpochRead(node int, line uint64) {
	present := s.l2s[node].Lookup(line) != cache.Invalid
	e := s.dir.getOrCreate(line)
	switch e.state {
	case dirUncached:
		if present {
			e.state = dirExclusive
			e.owner = int16(node)
			e.sharers = 0
		} else {
			s.dropIfUncached(e)
		}
	case dirShared:
		if present {
			e.sharers |= 1 << uint(node)
			s.demoteToShared(node, line)
		}
	case dirExclusive:
		owner := int(e.owner)
		if owner == node {
			// Evict-then-refill inside the quantum: exclusivity survives
			// if the copy is back, else the entry collapses.
			if !present {
				e.state = dirUncached
				s.dropIfUncached(e)
			}
			return
		}
		ost := s.l2s[owner].Lookup(line)
		if ost == cache.Invalid {
			// The recorded owner's copy is gone from the end-of-quantum
			// array; ownership falls to the reader.
			if present {
				e.owner = int16(node)
				e.sharers = 0
			} else {
				e.state = dirUncached
				s.dropIfUncached(e)
			}
			return
		}
		if ost == cache.Modified || ost == cache.Owned {
			s.Stats.DirtyC2C.Inc()
			if s.cfg.Protocol == MOESI {
				s.l2s[owner].SetState(line, cache.Owned)
				e.state = dirOwned
				e.owner = int16(owner)
				e.sharers = 1 << uint(owner)
				if present {
					e.sharers |= 1 << uint(node)
					s.demoteToShared(node, line)
				}
				return
			}
			s.mem.Writeback()
		}
		s.l2s[owner].SetState(line, cache.Shared)
		e.state = dirShared
		e.sharers = 1 << uint(owner)
		if present {
			e.sharers |= 1 << uint(node)
			s.demoteToShared(node, line)
		}
		s.dropIfUncached(e)
	case dirOwned:
		if int(e.owner) == node {
			return
		}
		s.Stats.DirtyC2C.Inc()
		if present {
			e.sharers |= 1 << uint(node)
			s.demoteToShared(node, line)
		}
	}
}

func (s *System) applyEpochWrite(node int, line uint64) {
	present := s.l2s[node].Lookup(line) != cache.Invalid
	e := s.dir.getOrCreate(line)
	// Invalidate every other recorded holder, as the serialized write
	// would have. Inv/Ack traffic is counted only on the shared/owned
	// paths, mirroring the serial protocol (an exclusive owner's copy is
	// collected by the data forward already charged in the quantum).
	switch e.state {
	case dirShared, dirOwned:
		for n := 0; n < s.cfg.NumNodes; n++ {
			if n == node || e.sharers&(1<<uint(n)) == 0 {
				continue
			}
			if prev := s.l2s[n].Invalidate(line); prev == cache.Modified || prev == cache.Owned {
				s.Stats.DirtyC2C.Inc()
			}
			s.backInvalidate(n, line)
			s.fabric.Send(interconnect.InvMsg, 1)
			s.fabric.Send(interconnect.AckMsg, 1)
			s.Stats.Invalidations.Inc()
		}
	case dirExclusive:
		if owner := int(e.owner); owner != node {
			if prev := s.l2s[owner].Invalidate(line); prev == cache.Modified {
				s.Stats.DirtyC2C.Inc()
			}
			s.backInvalidate(owner, line)
			s.Stats.Invalidations.Inc()
		}
	}
	if present {
		if s.l2s[node].Lookup(line) != cache.Modified {
			s.l2s[node].SetState(line, cache.Modified)
		}
		e.state = dirExclusive
		e.owner = int16(node)
		e.sharers = 0
	} else {
		e.state = dirUncached
		e.sharers = 0
		s.dropIfUncached(e)
	}
}

// applyEpochVictim is handleVictim with the L1 back-invalidation
// dropped (it ran node-privately during the quantum) and the dirty
// writeback accounted here, at the serialization point.
func (s *System) applyEpochVictim(node int, line uint64, st cache.State) {
	if e := s.dir.get(line); e != nil {
		switch e.state {
		case dirShared:
			e.sharers &^= 1 << uint(node)
			if e.sharers == 0 {
				e.state = dirUncached
			}
		case dirExclusive:
			if int(e.owner) == node {
				e.state = dirUncached
			}
		case dirOwned:
			e.sharers &^= 1 << uint(node)
			if node == int(e.owner) {
				if e.sharers == 0 {
					e.state = dirUncached
				} else {
					e.state = dirShared
				}
			}
		}
		s.dropIfUncached(e)
	}
	if st == cache.Modified || st == cache.Owned {
		s.mem.Writeback()
	}
}

// fixupEpochLines repairs every line touched this quantum so the
// directory exactly matches the L2 arrays before serial-path execution
// resumes. Replay keeps the two views close, but relaxed intra-quantum
// interleavings can leave residual disagreements (e.g. two nodes that
// both classified an uncached fill as Exclusive); the fix-up resolves
// each deterministically — lowest-numbered dirty holder wins ownership.
func (s *System) fixupEpochLines(evs []epochEvent) {
	s.epochLines = s.epochLines[:0]
	for i := range evs {
		s.epochLines = append(s.epochLines, evs[i].line)
	}
	slices.Sort(s.epochLines)
	s.epochLines = slices.Compact(s.epochLines)
	for _, la := range s.epochLines {
		s.fixupLine(la)
	}
}

func (s *System) fixupLine(la uint64) {
	var mask uint64
	var states [64]cache.State
	holders := 0
	for n := 0; n < s.cfg.NumNodes; n++ {
		st := s.l2s[n].Lookup(la)
		states[n] = st
		if st != cache.Invalid {
			mask |= 1 << uint(n)
			holders++
		}
	}
	if holders == 0 {
		if e := s.dir.get(la); e != nil {
			s.dir.del(e)
		}
		return
	}
	e := s.dir.getOrCreate(la)
	if holders == 1 {
		n := firstNode(mask)
		switch states[n] {
		case cache.Modified, cache.Exclusive:
			e.state = dirExclusive
			e.owner = int16(n)
			e.sharers = 0
		case cache.Owned:
			e.state = dirOwned
			e.owner = int16(n)
			e.sharers = mask
		default:
			e.state = dirShared
			e.sharers = mask
		}
		return
	}
	// Multiple holders: everyone degrades to Shared, except that under
	// MOESI the lowest-numbered dirty holder keeps dirty ownership in O.
	dirty := -1
	for n := 0; n < s.cfg.NumNodes; n++ {
		if states[n] == cache.Modified || states[n] == cache.Owned {
			dirty = n
			break
		}
	}
	if s.cfg.Protocol == MOESI && dirty >= 0 {
		for n := 0; n < s.cfg.NumNodes; n++ {
			switch {
			case states[n] == cache.Invalid:
			case n == dirty:
				if states[n] != cache.Owned {
					s.l2s[n].SetState(la, cache.Owned)
				}
			case states[n] != cache.Shared:
				s.l2s[n].SetState(la, cache.Shared)
			}
		}
		e.state = dirOwned
		e.owner = int16(dirty)
		e.sharers = mask
		return
	}
	for n := 0; n < s.cfg.NumNodes; n++ {
		if states[n] == cache.Invalid {
			continue
		}
		if states[n] == cache.Modified || states[n] == cache.Owned {
			s.mem.Writeback()
		}
		if states[n] != cache.Shared {
			s.l2s[n].SetState(la, cache.Shared)
		}
	}
	e.state = dirShared
	e.sharers = mask
}

func firstNode(mask uint64) int {
	for n := 0; ; n++ {
		if mask&(1<<uint(n)) != 0 {
			return n
		}
	}
}
