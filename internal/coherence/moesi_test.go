package coherence

import (
	"testing"
	"testing/quick"

	"offloadsim/internal/cache"
)

func moesiConfig(nodes int) Config {
	cfg := tinyConfig(nodes)
	cfg.Protocol = MOESI
	return cfg
}

func TestMOESIReadSharingAvoidsWriteback(t *testing.T) {
	s := MustNew(moesiConfig(2), nil)
	s.Write(0, 100) // node 0: M
	s.Read(1, 100)  // MOESI: owner keeps dirty data in O
	if s.L2(0).Lookup(100) != cache.Owned {
		t.Fatalf("owner state = %v, want O", s.L2(0).Lookup(100))
	}
	if s.L2(1).Lookup(100) != cache.Shared {
		t.Fatalf("reader state = %v, want S", s.L2(1).Lookup(100))
	}
	if s.Memory().Writebacks() != 0 {
		t.Fatalf("MOESI read sharing wrote back %d times", s.Memory().Writebacks())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIReadSharingDoesWriteBack(t *testing.T) {
	s := MustNew(tinyConfig(2), nil) // MESI default
	s.Write(0, 100)
	s.Read(1, 100)
	if s.Memory().Writebacks() != 1 {
		t.Fatalf("MESI read sharing wrote back %d times, want 1", s.Memory().Writebacks())
	}
	if s.L2(0).Lookup(100) != cache.Shared {
		t.Fatal("MESI owner should downgrade to S")
	}
}

func TestMOESIOwnerServesSubsequentReaders(t *testing.T) {
	s := MustNew(moesiConfig(3), nil)
	s.Write(0, 100)
	s.Read(1, 100)
	c2cBefore := s.Stats.C2CTransfers.Value()
	s.Read(2, 100) // must come cache-to-cache from the owner, not memory
	if s.Stats.C2CTransfers.Value() != c2cBefore+1 {
		t.Fatal("third reader not served by the owner")
	}
	if s.Memory().Writebacks() != 0 {
		t.Fatal("writeback despite owned sharing")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMOESIOwnedEvictionWritesBack(t *testing.T) {
	s := MustNew(moesiConfig(2), nil)
	sets := uint64(s.L2(0).NumSets())
	s.Write(0, 0)
	s.Read(1, 0) // node 0 owns line 0 in O
	// Conflict-evict line 0 from node 0 (2-way set).
	s.Read(0, sets)
	s.Read(0, 2*sets)
	s.Read(0, 3*sets)
	if s.Memory().Writebacks() == 0 {
		t.Fatal("evicting an Owned line must write back")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The survivor's copy must still be readable as a plain hit.
	if _, hit := s.Read(1, 0); !hit {
		t.Fatal("remaining sharer lost its copy")
	}
}

func TestMOESIOwnerWriteUpgrades(t *testing.T) {
	s := MustNew(moesiConfig(2), nil)
	s.Write(0, 100)
	s.Read(1, 100) // 0: O, 1: S
	_, hit := s.Write(0, 100)
	if hit {
		t.Fatal("O->M upgrade should not be a free hit (sharers must invalidate)")
	}
	if s.L2(0).Lookup(100) != cache.Modified {
		t.Fatal("owner not Modified after upgrade")
	}
	if s.L2(1).Lookup(100) != cache.Invalid {
		t.Fatal("sharer survived owner upgrade")
	}
	if s.Memory().Writebacks() != 0 {
		t.Fatal("dirty ownership migration should not write back")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMOESISharerWriteStealsOwnership(t *testing.T) {
	s := MustNew(moesiConfig(3), nil)
	s.Write(0, 100)
	s.Read(1, 100)
	s.Read(2, 100) // 0: O, 1: S, 2: S
	s.Write(1, 100)
	if s.L2(1).Lookup(100) != cache.Modified {
		t.Fatal("writer not Modified")
	}
	if s.L2(0).Lookup(100) != cache.Invalid || s.L2(2).Lookup(100) != cache.Invalid {
		t.Fatal("old holders survived")
	}
	if s.Memory().Writebacks() != 0 {
		t.Fatal("ownership migration wrote back")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMOESIWriteMissFromOutside(t *testing.T) {
	s := MustNew(moesiConfig(3), nil)
	s.Write(0, 100)
	s.Read(1, 100) // 0: O, 1: S
	s.Write(2, 100)
	if s.L2(2).Lookup(100) != cache.Modified {
		t.Fatal("outside writer not Modified")
	}
	if s.L2(0).Lookup(100) != cache.Invalid || s.L2(1).Lookup(100) != cache.Invalid {
		t.Fatal("holders survived outside write")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: MOESI preserves all protocol invariants under random traffic.
func TestQuickMOESIInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		s := MustNew(moesiConfig(3), nil)
		for _, op := range ops {
			node := int(op) % 3
			line := uint64((op >> 2) % 16)
			if op&0x8000 != 0 {
				s.Write(node, line)
			} else {
				s.Read(node, line)
			}
		}
		return s.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: MOESI never writes back more than MESI on the same traffic.
func TestQuickMOESIWritebackBound(t *testing.T) {
	f := func(ops []uint16) bool {
		mesi := MustNew(tinyConfig(2), nil)
		moesi := MustNew(moesiConfig(2), nil)
		for _, op := range ops {
			node := int(op) % 2
			line := uint64((op >> 1) % 8)
			if op&0x8000 != 0 {
				mesi.Write(node, line)
				moesi.Write(node, line)
			} else {
				mesi.Read(node, line)
				moesi.Read(node, line)
			}
		}
		return moesi.Memory().Writebacks() <= mesi.Memory().Writebacks()
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolString(t *testing.T) {
	if MESI.String() != "MESI" || MOESI.String() != "MOESI" {
		t.Fatal("protocol names wrong")
	}
}

// Property: MESI and MOESI are performance-transparent to the caches —
// the same access trace produces the identical hit/miss sequence; the
// protocols differ only in memory writeback traffic.
func TestQuickProtocolHitMissEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		mesi := MustNew(tinyConfig(3), nil)
		moesi := MustNew(moesiConfig(3), nil)
		for _, op := range ops {
			node := int(op) % 3
			line := uint64((op >> 2) % 16)
			var hitA, hitB bool
			if op&0x8000 != 0 {
				_, hitA = mesi.Write(node, line)
				_, hitB = moesi.Write(node, line)
			} else {
				_, hitA = mesi.Read(node, line)
				_, hitB = moesi.Read(node, line)
			}
			if hitA != hitB {
				return false
			}
		}
		return mesi.CheckInvariants() == nil && moesi.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
