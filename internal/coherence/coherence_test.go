package coherence

import (
	"testing"
	"testing/quick"

	"offloadsim/internal/cache"
	"offloadsim/internal/interconnect"
	"offloadsim/internal/memory"
)

// tinyConfig returns a 2-node system with small caches so eviction paths
// are exercised quickly.
func tinyConfig(nodes int) Config {
	return Config{
		NumNodes: nodes,
		L2: cache.Config{
			Name: "L2", SizeBytes: 4096, LineBytes: 64, Ways: 2, HitLatency: 12,
		},
		DirectoryLatency: 10,
		Fabric:           interconnect.Config{LinkLatency: 4, RouterLatency: 1},
		Memory:           memory.Config{Latency: 350},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.NumNodes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad = DefaultConfig()
	bad.NumNodes = 65
	if err := bad.Validate(); err == nil {
		t.Fatal("65 nodes accepted (sharers bitmask is 64-wide)")
	}
	bad = DefaultConfig()
	bad.DirectoryLatency = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative directory latency accepted")
	}
}

func TestColdReadFillsExclusive(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	lat, hit := s.Read(0, 100)
	if hit {
		t.Fatal("cold read reported hit")
	}
	// 12 (L2 tag) + 5 (req) + 10 (dir) + 350 (mem) + 5 (data) = 382.
	if lat != 382 {
		t.Fatalf("cold read latency = %d, want 382", lat)
	}
	if s.L2(0).Lookup(100) != cache.Exclusive {
		t.Fatalf("cold fill state = %v, want E", s.L2(0).Lookup(100))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadHitIsL2Latency(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	s.Read(0, 100)
	lat, hit := s.Read(0, 100)
	if !hit || lat != 12 {
		t.Fatalf("hit=%v lat=%d, want true/12", hit, lat)
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	s.Read(0, 100) // E
	lat, hit := s.Write(0, 100)
	if !hit || lat != 12 {
		t.Fatalf("E->M upgrade should be a local hit, got hit=%v lat=%d", hit, lat)
	}
	if s.L2(0).Lookup(100) != cache.Modified {
		t.Fatal("E->M upgrade lost")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSharingDowngradesOwner(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	s.Write(0, 100) // node 0: M
	lat, hit := s.Read(1, 100)
	if hit {
		t.Fatal("remote read reported hit")
	}
	// c2c: 12 + 5(req) + 10(dir) + 5(fwd) + 12(owner tag) + 5(data) = 49.
	if lat != 49 {
		t.Fatalf("c2c read latency = %d, want 49", lat)
	}
	if s.L2(0).Lookup(100) != cache.Shared || s.L2(1).Lookup(100) != cache.Shared {
		t.Fatal("both copies should be Shared after read sharing")
	}
	if s.Stats.C2CTransfers.Value() != 1 || s.Stats.DirtyC2C.Value() != 1 {
		t.Fatalf("c2c=%d dirty=%d, want 1/1", s.Stats.C2CTransfers.Value(), s.Stats.DirtyC2C.Value())
	}
	if s.Memory().Writebacks() != 1 {
		t.Fatal("dirty downgrade should write back")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := MustNew(tinyConfig(3), nil)
	s.Read(0, 100)
	s.Read(1, 100)
	s.Read(2, 100) // all Shared
	_, hit := s.Write(0, 100)
	if hit {
		t.Fatal("upgrade from S should not be a pure hit")
	}
	if s.L2(0).Lookup(100) != cache.Modified {
		t.Fatal("writer not Modified")
	}
	if s.L2(1).Lookup(100) != cache.Invalid || s.L2(2).Lookup(100) != cache.Invalid {
		t.Fatal("sharers not invalidated")
	}
	if s.Stats.Invalidations.Value() != 2 {
		t.Fatalf("invalidations = %d, want 2", s.Stats.Invalidations.Value())
	}
	if s.Stats.UpgradeMisses.Value() != 1 {
		t.Fatalf("upgrade misses = %d, want 1", s.Stats.UpgradeMisses.Value())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteStealsOwnership(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	s.Write(0, 100) // node 0: M
	_, hit := s.Write(1, 100)
	if hit {
		t.Fatal("remote write reported hit")
	}
	if s.L2(0).Lookup(100) != cache.Invalid {
		t.Fatal("previous owner retained copy")
	}
	if s.L2(1).Lookup(100) != cache.Modified {
		t.Fatal("new owner not Modified")
	}
	if s.Stats.DirtyC2C.Value() != 1 {
		t.Fatal("dirty ownership transfer not counted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPingPong(t *testing.T) {
	// The N=0 pathology: two nodes alternately writing one line.
	s := MustNew(tinyConfig(2), nil)
	for i := 0; i < 10; i++ {
		s.Write(i%2, 100)
	}
	// First write is a cold miss; the other 9 are ownership transfers.
	if got := s.Stats.C2CTransfers.Value(); got != 9 {
		t.Fatalf("ping-pong c2c transfers = %d, want 9", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionNotifiesDirectory(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	sets := uint64(s.L2(0).NumSets())
	// Fill one set beyond capacity (2 ways) with dirty lines.
	s.Write(0, 0)
	s.Write(0, sets)
	s.Write(0, 2*sets) // evicts line 0
	if s.Memory().Writebacks() == 0 {
		t.Fatal("dirty eviction did not write back")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The evicted line must be re-fetchable from memory (uncached).
	lat, _ := s.Read(0, 0)
	if lat < 350 {
		t.Fatalf("re-read of evicted line latency %d; expected a memory fill", lat)
	}
}

func TestL1BackInvalidationHook(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	var dropped []uint64
	s.RegisterL1Hook(0, func(la uint64) { dropped = append(dropped, la) })
	s.Read(0, 100)
	s.Write(1, 100) // invalidates node 0's copy
	if len(dropped) != 1 || dropped[0] != 100 {
		t.Fatalf("back-invalidation hook saw %v, want [100]", dropped)
	}
}

func TestL1HookFiresOnEviction(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	count := 0
	s.RegisterL1Hook(0, func(uint64) { count++ })
	sets := uint64(s.L2(0).NumSets())
	s.Read(0, 0)
	s.Read(0, sets)
	s.Read(0, 2*sets) // evicts
	if count != 1 {
		t.Fatalf("hook fired %d times on eviction, want 1", count)
	}
}

func TestAggregateL2HitRate(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	s.Read(0, 100) // miss
	s.Read(0, 100) // hit
	s.Read(1, 200) // miss
	got := s.AggregateL2HitRate([]int{0, 1})
	if got != 1.0/3.0 {
		t.Fatalf("aggregate hit rate = %v, want 1/3", got)
	}
}

func TestResetStatsPreservesContents(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	s.Read(0, 100)
	s.ResetStats()
	if s.L2(0).Stats.Accesses.Value() != 0 {
		t.Fatal("reset did not clear L2 stats")
	}
	if _, hit := s.Read(0, 100); !hit {
		t.Fatal("reset evicted cache contents")
	}
}

func TestDirectoryShrinks(t *testing.T) {
	s := MustNew(tinyConfig(2), nil)
	sets := uint64(s.L2(0).NumSets())
	for i := uint64(0); i < 8; i++ {
		s.Read(0, i*sets) // conflict-evict through one set
	}
	// Only 2 ways can be resident; directory must have dropped the rest.
	if got := s.DirectorySize(); got > 2 {
		t.Fatalf("directory holds %d entries for a 2-way set, want <= 2", got)
	}
}

// Property: after any sequence of reads/writes from random nodes to a
// small line pool, all protocol invariants hold — single-writer, directory
// and caches agree exactly.
func TestQuickProtocolInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		s := MustNew(tinyConfig(3), nil)
		for _, op := range ops {
			node := int(op) % 3
			line := uint64((op >> 2) % 16)
			if op&0x8000 != 0 {
				s.Write(node, line)
			} else {
				s.Read(node, line)
			}
		}
		return s.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: latency is always at least the L2 hit latency and hits are
// exactly the L2 hit latency.
func TestQuickLatencyBounds(t *testing.T) {
	f := func(ops []uint16) bool {
		s := MustNew(tinyConfig(2), nil)
		for _, op := range ops {
			node := int(op) % 2
			line := uint64((op >> 1) % 8)
			var lat int
			var hit bool
			if op&0x8000 != 0 {
				lat, hit = s.Write(node, line)
			} else {
				lat, hit = s.Read(node, line)
			}
			if lat < 12 {
				return false
			}
			if hit && lat != 12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
