package coherence

import "math/bits"

// dirEntry tracks one line, stored inline in the directory table's slot
// array. Entries are created lazily on first touch and removed when the
// line returns to uncached, keeping the table proportional to the
// aggregate cached footprint.
// The layout is deliberately 24 bytes: owner fits int16 (NumNodes <= 64),
// so slots pack 25% denser than with a machine-word owner, and directory
// probes — uniformly distributed over a multi-megabyte table — pull
// proportionally fewer bytes through the memory hierarchy.
type dirEntry struct {
	key     uint64 // line address; valid when meta == slotFull
	sharers uint64 // bitmask over nodes; used in dirShared/dirOwned
	owner   int16
	state   dirState
	meta    uint8
}

const (
	slotEmpty uint8 = iota
	slotFull
	slotDead // tombstone: deleted, but probe chains pass through
)

// dirTable is an open-addressed hash table with inline entries, replacing
// the previous map[uint64]*dirEntry. The map cost the detailed hot path
// one heap allocation per first-touched line (two thirds of all
// steady-state allocations) plus hashing and bucket-chasing on every
// directory transaction; here a lookup is a multiply, a shift and a short
// linear probe over contiguous slots.
//
// Deletion uses tombstones, so entry pointers stay valid across deletes.
// Pointers are only invalidated by a rehash, which getOrCreate alone can
// trigger; callers never hold an entry across an insert.
type dirTable struct {
	slots []dirEntry
	mask  uint64
	shift uint // 64 - log2(len(slots)), for Fibonacci hashing
	live  int
	dead  int
}

// fibMult is 2^64 / phi, the multiplicative hashing constant.
const fibMult = 0x9E3779B97F4A7C15

// newDirTable sizes the table for capHint simultaneously-tracked lines.
// The directory only tracks cached lines, so the natural hint is the
// aggregate L2 capacity; doubling it keeps the steady-state load factor
// at most one half, with tombstone pressure handled by same-size rehash.
func newDirTable(capHint int) *dirTable {
	if capHint < 16 {
		capHint = 16
	}
	size := 1 << uint(bits.Len(uint(capHint*2-1)))
	return &dirTable{
		slots: make([]dirEntry, size),
		mask:  uint64(size - 1),
		shift: uint(64 - bits.Len(uint(size-1))),
	}
}

func (t *dirTable) hash(key uint64) uint64 {
	return (key * fibMult) >> t.shift
}

// get returns the entry for key, or nil if the line is untracked.
func (t *dirTable) get(key uint64) *dirEntry {
	i := t.hash(key)
	for {
		s := &t.slots[i]
		switch s.meta {
		case slotEmpty:
			return nil
		case slotFull:
			if s.key == key {
				return s
			}
		}
		i = (i + 1) & t.mask
	}
}

// getOrCreate returns the entry for key, creating it in dirUncached with
// no owner or sharers when absent. The returned pointer is valid until
// the next getOrCreate (which may rehash).
func (t *dirTable) getOrCreate(key uint64) *dirEntry {
	// Fast path: the entry already lives in its home slot — no resize
	// check, no tombstone bookkeeping. At the table's bounded load factor
	// this covers the overwhelming share of directory transactions.
	i := t.hash(key)
	if s := &t.slots[i]; s.meta == slotFull && s.key == key {
		return s
	}
	if (t.live+t.dead+1)*4 > len(t.slots)*3 {
		t.rehash()
		i = t.hash(key)
	}
	var grave *dirEntry
	for {
		s := &t.slots[i]
		switch s.meta {
		case slotEmpty:
			if grave != nil {
				s = grave
				t.dead--
			}
			*s = dirEntry{key: key, state: dirUncached, meta: slotFull}
			t.live++
			return s
		case slotFull:
			if s.key == key {
				return s
			}
		case slotDead:
			if grave == nil {
				grave = s
			}
		}
		i = (i + 1) & t.mask
	}
}

// del removes an entry returned by get/getOrCreate. Tombstone-only: no
// slot moves, so other outstanding entry pointers stay valid.
func (t *dirTable) del(e *dirEntry) {
	e.meta = slotDead
	t.live--
	t.dead++
}

// rehash rebuilds the table without tombstones, growing only when the
// live population actually needs it. With the table pre-sized to the
// aggregate cache capacity this runs rarely, purely to recycle
// tombstones left by eviction churn.
func (t *dirTable) rehash() {
	size := len(t.slots)
	for t.live*4 > size*3/2 {
		size *= 2
	}
	old := t.slots
	t.slots = make([]dirEntry, size)
	t.mask = uint64(size - 1)
	t.shift = uint(64 - bits.Len(uint(size-1)))
	t.dead = 0
	for oi := range old {
		if old[oi].meta != slotFull {
			continue
		}
		i := t.hash(old[oi].key)
		for t.slots[i].meta == slotFull {
			i = (i + 1) & t.mask
		}
		t.slots[i] = old[oi]
	}
}

// len returns the number of tracked lines.
func (t *dirTable) len() int { return t.live }

// forEach visits every tracked entry until fn returns false. Iteration
// order is slot order: deterministic for a given insert/delete history.
func (t *dirTable) forEach(fn func(e *dirEntry) bool) {
	for i := range t.slots {
		if t.slots[i].meta == slotFull && !fn(&t.slots[i]) {
			return
		}
	}
}
