// Package coherence implements the directory-based MESI protocol that
// keeps the simulated private L2 caches coherent (§IV: "two such cores
// with private L2s which are kept coherent via a directory based protocol
// and a simple point-to-point interconnect fabric ... Our system models
// directory lookup, cache-to-cache transfers, and coherence invalidation
// overheads independently").
//
// The System owns the per-node L2 arrays, the directory, the fabric and
// main memory. Cores call Read/Write with their node id and a line
// address; the returned latency folds in L2 access, directory lookup,
// cache-to-cache forwarding, invalidation round trips and memory fills.
// Inclusive L1s are kept consistent through registered back-invalidation
// hooks.
//
// This protocol is the load-bearing substrate for the paper's key result:
// the N=0 collapse in Figure 4 is caused by user/OS shared lines
// ping-ponging between the user core's and OS core's caches, and that
// cost emerges here, not from any hard-coded penalty.
package coherence

import (
	"fmt"
	"slices"

	"offloadsim/internal/cache"
	"offloadsim/internal/interconnect"
	"offloadsim/internal/memory"
	"offloadsim/internal/rng"
	"offloadsim/internal/stats"
)

// Protocol selects the coherence protocol family.
type Protocol int

const (
	// MESI is the paper's baseline: a dirty line read by another cache
	// is written back to memory and shared clean.
	MESI Protocol = iota
	// MOESI adds the Owned state: a dirty line can be shared without a
	// memory writeback, with the owner responsible for supplying it and
	// writing it back on eviction. Provided as an ablation of the
	// coherence cost off-loading pays for user/OS shared data.
	MOESI
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == MOESI {
		return "MOESI"
	}
	return "MESI"
}

// dirState is the directory's view of a line.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirExclusive // E or M at the owner; the owner upgrades E->M silently
	dirOwned     // MOESI: dirty at the owner, replicated among sharers
)

// Config assembles a coherent multi-node memory system.
type Config struct {
	// NumNodes is the number of private-L2 nodes (user cores + OS core).
	NumNodes int
	// Protocol selects MESI (paper baseline) or MOESI.
	Protocol Protocol
	// L2 is the per-node L2 geometry. Name is suffixed with the node id.
	L2 cache.Config
	// DirectoryLatency is the directory lookup/update cost in cycles.
	DirectoryLatency int
	// Fabric times the point-to-point messages.
	Fabric interconnect.Config
	// Memory is the backing store model.
	Memory memory.Config
}

// DefaultL2Config returns the paper's Table II L2: 1 MB, 16-way, 12-cycle,
// 64 B lines.
func DefaultL2Config() cache.Config {
	return cache.Config{
		Name:       "L2",
		SizeBytes:  1 << 20,
		LineBytes:  64,
		Ways:       16,
		HitLatency: 12,
		Policy:     cache.LRU,
	}
}

// DefaultConfig returns a two-node (user + OS core) Table II system.
func DefaultConfig() Config {
	return Config{
		NumNodes:         2,
		L2:               DefaultL2Config(),
		DirectoryLatency: 10,
		Fabric:           interconnect.DefaultConfig(),
		Memory:           memory.DefaultConfig(),
	}
}

// Validate checks the composite configuration.
func (c Config) Validate() error {
	if c.NumNodes < 1 || c.NumNodes > 64 {
		return fmt.Errorf("coherence: NumNodes %d out of [1,64]", c.NumNodes)
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.DirectoryLatency < 0 {
		return fmt.Errorf("coherence: negative directory latency")
	}
	if err := c.Fabric.Validate(); err != nil {
		return err
	}
	return c.Memory.Validate()
}

// Stats aggregates protocol-level events across the system.
type Stats struct {
	DirLookups      stats.Counter
	C2CTransfers    stats.Counter // lines supplied cache-to-cache
	DirtyC2C        stats.Counter // c2c transfers of Modified data
	Invalidations   stats.Counter // individual invalidation messages
	UpgradeMisses   stats.Counter // S->M upgrades
	MemoryFills     stats.Counter
	CoherenceMisses stats.Counter // misses served by another cache
}

// System is the coherent memory system shared by all simulated cores.
type System struct {
	cfg     Config
	l2s     []*cache.Cache
	dir     *dirTable
	fabric  *interconnect.Fabric
	mem     *memory.Memory
	l1Hooks [][]func(lineAddr uint64)

	// scratch is CheckInvariants' reusable presence buffer, so repeated
	// invariant sweeps (debug builds, tests, epoch checks) allocate
	// nothing in steady state.
	scratch []presenceRec

	// epochEvents and epochLines are ReconcileEpoch's reusable merge and
	// fix-up buffers (see epoch.go), allocation-free in steady state.
	epochEvents []epochEvent
	epochLines  []uint64

	Stats Stats
}

// New builds the system. The rnd source seeds per-L2 replacement streams
// when the configured policy needs one.
func New(cfg Config, rnd *rng.Source) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg: cfg,
		// The directory tracks at most the aggregate cached line count,
		// so size the table to the combined L2 capacity up front and it
		// never grows in steady state.
		dir:     newDirTable(cfg.NumNodes * cfg.L2.SizeBytes / cfg.L2.LineBytes),
		fabric:  interconnect.New(cfg.Fabric),
		mem:     memory.New(cfg.Memory),
		l1Hooks: make([][]func(uint64), cfg.NumNodes),
	}
	for i := 0; i < cfg.NumNodes; i++ {
		l2cfg := cfg.L2
		l2cfg.Name = fmt.Sprintf("%s%d", cfg.L2.Name, i)
		var src *rng.Source
		if l2cfg.Policy == cache.Random {
			if rnd == nil {
				return nil, fmt.Errorf("coherence: random L2 policy requires rng")
			}
			src = rnd.Fork()
		}
		l2, err := cache.New(l2cfg, src)
		if err != nil {
			return nil, err
		}
		s.l2s = append(s.l2s, l2)
	}
	return s, nil
}

// MustNew is New that panics on error, for fixed experiment configs.
func MustNew(cfg Config, rnd *rng.Source) *System {
	s, err := New(cfg, rnd)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// NumNodes returns the node count.
func (s *System) NumNodes() int { return s.cfg.NumNodes }

// L2 exposes node n's L2 array (for stats collection and tests).
func (s *System) L2(n int) *cache.Cache { return s.l2s[n] }

// Memory exposes the backing store (for stats).
func (s *System) Memory() *memory.Memory { return s.mem }

// Fabric exposes the interconnect (for stats).
func (s *System) Fabric() *interconnect.Fabric { return s.fabric }

// RegisterL1Hook attaches a back-invalidation callback for node. Whenever a
// line leaves node's L2 (eviction or coherence invalidation), every hook on
// that node is called so inclusive L1s can drop it.
func (s *System) RegisterL1Hook(node int, hook func(lineAddr uint64)) {
	s.l1Hooks[node] = append(s.l1Hooks[node], hook)
}

func (s *System) backInvalidate(node int, lineAddr uint64) {
	for _, h := range s.l1Hooks[node] {
		h(lineAddr)
	}
}

// LineBytes returns the coherence granularity.
func (s *System) LineBytes() int { return s.cfg.L2.LineBytes }

// LineAddr converts a byte address to a line address.
func (s *System) LineAddr(addr uint64) uint64 {
	return s.l2s[0].LineAddr(addr)
}

func (s *System) entry(lineAddr uint64) *dirEntry {
	return s.dir.getOrCreate(lineAddr)
}

func (s *System) dropIfUncached(e *dirEntry) {
	if e.state == dirUncached || (e.state == dirShared && e.sharers == 0) {
		s.dir.del(e)
	}
}

// handleVictim processes an L2 eviction at node: directory bookkeeping,
// posted writeback for dirty victims, and L1 back-invalidation to preserve
// inclusion.
func (s *System) handleVictim(node int, v cache.Victim) {
	e := s.dir.get(v.LineAddr)
	if e != nil {
		switch e.state {
		case dirShared:
			e.sharers &^= 1 << uint(node)
			if e.sharers == 0 {
				e.state = dirUncached
			}
		case dirExclusive:
			if int(e.owner) == node {
				e.state = dirUncached
			}
		case dirOwned:
			e.sharers &^= 1 << uint(node)
			if node == int(e.owner) {
				// The dirty owner leaves: its writeback cleans memory,
				// and the remaining copies (if any) are plain Shared.
				if e.sharers == 0 {
					e.state = dirUncached
				} else {
					e.state = dirShared
				}
			}
			// A departing non-owner sharer leaves the owner (still
			// dirty) in place; the entry stays dirOwned.
		}
		s.dropIfUncached(e)
	}
	if v.State == cache.Modified || v.State == cache.Owned {
		s.mem.Writeback()
	}
	s.backInvalidate(node, v.LineAddr)
}

// Read performs a coherent read of lineAddr by node and returns the access
// latency in cycles. The bool result reports whether the L2 hit.
func (s *System) Read(node int, lineAddr uint64) (latency int, hit bool) {
	l2 := s.l2s[node]
	l2.Stats.Accesses.Inc()
	// Probe = lookup + recency touch in one way scan; every present line
	// is a read hit.
	if st := l2.Probe(lineAddr); st != cache.Invalid {
		l2.Stats.Hits.Inc()
		return l2.Config().HitLatency, true
	}
	l2.Stats.Misses.Inc()

	// Tag check, then a directory transaction over the fabric.
	lat := l2.Config().HitLatency
	lat += s.fabric.Send(interconnect.ReqMsg, 1)
	lat += s.cfg.DirectoryLatency
	s.Stats.DirLookups.Inc()

	e := s.entry(lineAddr)
	var fill cache.State
	switch e.state {
	case dirUncached:
		lat += s.mem.Read()
		s.Stats.MemoryFills.Inc()
		lat += s.fabric.Send(interconnect.DataMsg, 1)
		fill = cache.Exclusive
		e.state = dirExclusive
		e.owner = int16(node)
		e.sharers = 0

	case dirShared:
		// Clean shared data is supplied by memory; sharers keep their
		// copies.
		lat += s.mem.Read()
		s.Stats.MemoryFills.Inc()
		lat += s.fabric.Send(interconnect.DataMsg, 1)
		fill = cache.Shared
		e.sharers |= 1 << uint(node)

	case dirExclusive:
		// Forward to the owner, which supplies the line cache-to-cache.
		owner := int(e.owner)
		lat += s.fabric.Send(interconnect.FwdMsg, 1)
		lat += s.l2s[owner].Config().HitLatency
		ost := s.l2s[owner].Lookup(lineAddr)
		if ost == cache.Invalid {
			panic(fmt.Sprintf("coherence: directory owner %d lacks line %#x", owner, lineAddr))
		}
		lat += s.fabric.Send(interconnect.DataMsg, 1)
		s.Stats.C2CTransfers.Inc()
		s.Stats.CoherenceMisses.Inc()
		fill = cache.Shared
		if ost == cache.Modified {
			s.Stats.DirtyC2C.Inc()
			if s.cfg.Protocol == MOESI {
				// MOESI: the owner keeps the dirty line in Owned and
				// remains responsible for it — no memory writeback.
				s.l2s[owner].SetState(lineAddr, cache.Owned)
				e.state = dirOwned
				e.owner = int16(owner)
				e.sharers = (1 << uint(owner)) | (1 << uint(node))
				break
			}
			// MESI: dirty data is written back (posted) and shared clean.
			s.mem.Writeback()
		}
		s.l2s[owner].SetState(lineAddr, cache.Shared)
		e.state = dirShared
		e.sharers = (1 << uint(owner)) | (1 << uint(node))

	case dirOwned:
		// MOESI: the owner supplies the dirty line; the requester joins
		// the sharer set.
		owner := int(e.owner)
		lat += s.fabric.Send(interconnect.FwdMsg, 1)
		lat += s.l2s[owner].Config().HitLatency
		if s.l2s[owner].Lookup(lineAddr) != cache.Owned {
			panic(fmt.Sprintf("coherence: recorded owner %d does not hold %#x in O", owner, lineAddr))
		}
		lat += s.fabric.Send(interconnect.DataMsg, 1)
		s.Stats.C2CTransfers.Inc()
		s.Stats.DirtyC2C.Inc()
		s.Stats.CoherenceMisses.Inc()
		fill = cache.Shared
		e.sharers |= 1 << uint(node)
	}

	if v, evicted := l2.Allocate(lineAddr, fill); evicted {
		s.handleVictim(node, v)
	}
	return lat, false
}

// Write performs a coherent write of lineAddr by node and returns the
// access latency. The bool result reports whether the L2 hit with write
// permission already held.
func (s *System) Write(node int, lineAddr uint64) (latency int, hit bool) {
	l2 := s.l2s[node]
	l2.Stats.Accesses.Inc()
	// Probe touches any present line up front (single way scan); each
	// switch arm below previously performed the same touch itself.
	switch l2.Probe(lineAddr) {
	case cache.Modified:
		l2.Stats.Hits.Inc()
		return l2.Config().HitLatency, true
	case cache.Exclusive:
		// Silent E->M upgrade; the directory already records exclusivity.
		l2.Stats.Hits.Inc()
		l2.SetState(lineAddr, cache.Modified)
		return l2.Config().HitLatency, true
	case cache.Shared:
		// Upgrade miss: invalidate the other sharers (in MOESI this may
		// include an Owned copy; dirty ownership migrates to the writer
		// with no writeback, since all sharers hold the same data).
		l2.Stats.Misses.Inc()
		s.Stats.UpgradeMisses.Inc()
		lat := l2.Config().HitLatency
		lat += s.fabric.Send(interconnect.ReqMsg, 1)
		lat += s.cfg.DirectoryLatency
		s.Stats.DirLookups.Inc()
		e := s.entry(lineAddr)
		lat += s.invalidateSharers(e, node, lineAddr)
		e.state = dirExclusive
		e.owner = int16(node)
		e.sharers = 0
		l2.SetState(lineAddr, cache.Modified)
		return lat, false
	case cache.Owned:
		// MOESI: the owner writes its own dirty shared line — invalidate
		// the other sharers and move O->M locally.
		l2.Stats.Misses.Inc()
		s.Stats.UpgradeMisses.Inc()
		lat := l2.Config().HitLatency
		lat += s.fabric.Send(interconnect.ReqMsg, 1)
		lat += s.cfg.DirectoryLatency
		s.Stats.DirLookups.Inc()
		e := s.entry(lineAddr)
		lat += s.invalidateSharers(e, node, lineAddr)
		e.state = dirExclusive
		e.owner = int16(node)
		e.sharers = 0
		l2.SetState(lineAddr, cache.Modified)
		return lat, false
	}
	// Write miss.
	l2.Stats.Misses.Inc()
	lat := l2.Config().HitLatency
	lat += s.fabric.Send(interconnect.ReqMsg, 1)
	lat += s.cfg.DirectoryLatency
	s.Stats.DirLookups.Inc()

	e := s.entry(lineAddr)
	switch e.state {
	case dirUncached:
		lat += s.mem.Read()
		s.Stats.MemoryFills.Inc()
		lat += s.fabric.Send(interconnect.DataMsg, 1)

	case dirShared:
		// Invalidate all sharers, fill from memory.
		lat += s.invalidateSharers(e, node, lineAddr)
		lat += s.mem.Read()
		s.Stats.MemoryFills.Inc()
		lat += s.fabric.Send(interconnect.DataMsg, 1)
		s.Stats.CoherenceMisses.Inc()

	case dirExclusive:
		// Transfer ownership: the current owner invalidates its copy and
		// forwards the (possibly dirty) line.
		owner := int(e.owner)
		lat += s.fabric.Send(interconnect.FwdMsg, 1)
		lat += s.l2s[owner].Config().HitLatency
		ost := s.l2s[owner].Lookup(lineAddr)
		if ost == cache.Invalid {
			panic(fmt.Sprintf("coherence: directory owner %d lacks line %#x", owner, lineAddr))
		}
		if ost == cache.Modified {
			s.Stats.DirtyC2C.Inc()
		}
		s.l2s[owner].Invalidate(lineAddr)
		s.backInvalidate(owner, lineAddr)
		s.Stats.Invalidations.Inc()
		lat += s.fabric.Send(interconnect.DataMsg, 1)
		s.Stats.C2CTransfers.Inc()
		s.Stats.CoherenceMisses.Inc()

	case dirOwned:
		// MOESI write miss: the owner forwards its dirty line and every
		// holder invalidates; dirty ownership moves to the writer.
		owner := int(e.owner)
		lat += s.fabric.Send(interconnect.FwdMsg, 1)
		lat += s.l2s[owner].Config().HitLatency
		if s.l2s[owner].Lookup(lineAddr) != cache.Owned {
			panic(fmt.Sprintf("coherence: recorded owner %d does not hold %#x in O", owner, lineAddr))
		}
		s.Stats.DirtyC2C.Inc()
		lat += s.invalidateSharers(e, node, lineAddr)
		lat += s.fabric.Send(interconnect.DataMsg, 1)
		s.Stats.C2CTransfers.Inc()
		s.Stats.CoherenceMisses.Inc()
	}
	e.state = dirExclusive
	e.owner = int16(node)
	e.sharers = 0

	if v, evicted := l2.Allocate(lineAddr, cache.Modified); evicted {
		s.handleVictim(node, v)
	}
	return lat, false
}

// invalidateSharers sends invalidations to every sharer except requester
// (including an Owned copy under MOESI), charging one round trip
// (invalidations proceed in parallel) and counting each message.
func (s *System) invalidateSharers(e *dirEntry, requester int, lineAddr uint64) int {
	lat := 0
	any := false
	for n := 0; n < s.cfg.NumNodes; n++ {
		if n == requester || e.sharers&(1<<uint(n)) == 0 {
			continue
		}
		s.l2s[n].Invalidate(lineAddr)
		s.backInvalidate(n, lineAddr)
		s.fabric.Send(interconnect.InvMsg, 1)
		s.fabric.Send(interconnect.AckMsg, 1)
		s.Stats.Invalidations.Inc()
		any = true
	}
	if any {
		// Parallel round trip: one inv hop out, one ack hop back.
		lat = 2 * (s.cfg.Fabric.RouterLatency + s.cfg.Fabric.LinkLatency)
	}
	return lat
}

// presenceRec is one (line, node, state) observation gathered from the
// cache arrays by CheckInvariants.
type presenceRec struct {
	la   uint64
	node int
	st   cache.State
}

// CheckInvariants validates the protocol's global invariants against the
// actual cache contents. It is O(cached lines) and intended for tests and
// debug builds; it returns an error describing the first violation found.
//
// The per-line presence view is gathered into a reusable sorted scratch
// slice rather than a freshly built map, so repeated sweeps are
// allocation-free in steady state.
func (s *System) CheckInvariants() error {
	s.scratch = s.scratch[:0]
	for n, l2 := range s.l2s {
		n := n
		l2.ForEachValid(func(la uint64, st cache.State) {
			s.scratch = append(s.scratch, presenceRec{la: la, node: n, st: st})
		})
	}
	sortPresence(s.scratch)
	// Walk runs of equal line address; nodes within a run are already in
	// ascending order because each cache was scanned in node order.
	for i := 0; i < len(s.scratch); {
		j := i + 1
		for j < len(s.scratch) && s.scratch[j].la == s.scratch[i].la {
			j++
		}
		if err := s.checkLine(s.scratch[i].la, s.scratch[i:j]); err != nil {
			return err
		}
		i = j
	}
	// Directory must not claim presence the caches lack.
	var dirErr error
	s.dir.forEach(func(e *dirEntry) bool {
		la := e.key
		switch e.state {
		case dirExclusive:
			if s.l2s[e.owner].Lookup(la) == cache.Invalid {
				dirErr = fmt.Errorf("line %#x: directory owner %d has no copy", la, e.owner)
				return false
			}
		case dirShared, dirOwned:
			for n := 0; n < s.cfg.NumNodes; n++ {
				if e.sharers&(1<<uint(n)) != 0 && s.l2s[n].Lookup(la) == cache.Invalid {
					dirErr = fmt.Errorf("line %#x: recorded sharer %d has no copy", la, n)
					return false
				}
			}
		}
		return true
	})
	return dirErr
}

// sortPresence orders records by (line, node) in place, without
// allocating.
func sortPresence(recs []presenceRec) {
	slices.SortFunc(recs, func(a, b presenceRec) int {
		if a.la != b.la {
			if a.la < b.la {
				return -1
			}
			return 1
		}
		return a.node - b.node
	})
}

// checkLine validates one line's cached copies (run) against each other
// and the directory. Error paths may allocate; the clean path does not.
func (s *System) checkLine(la uint64, run []presenceRec) error {
	mCount, eCount, oCount := 0, 0, 0
	for _, r := range run {
		switch r.st {
		case cache.Modified:
			mCount++
		case cache.Exclusive:
			eCount++
		case cache.Owned:
			oCount++
		}
	}
	if mCount+eCount > 1 || (mCount+eCount == 1 && len(run) > 1) {
		return fmt.Errorf("line %#x: exclusive/modified copy coexists with others (%v)", la, runStates(run))
	}
	if oCount > 1 || (oCount == 1 && mCount+eCount > 0) {
		return fmt.Errorf("line %#x: invalid Owned combination (%v)", la, runStates(run))
	}
	if oCount == 1 && s.cfg.Protocol != MOESI {
		return fmt.Errorf("line %#x: Owned state under MESI", la)
	}
	e := s.dir.get(la)
	if e == nil {
		return fmt.Errorf("line %#x cached at %v but unknown to directory", la, runNodes(run))
	}
	switch e.state {
	case dirExclusive:
		if len(run) != 1 || run[0].node != int(e.owner) {
			return fmt.Errorf("line %#x: directory says exclusive@%d, caches say %v", la, e.owner, runNodes(run))
		}
	case dirShared:
		for _, r := range run {
			if e.sharers&(1<<uint(r.node)) == 0 {
				return fmt.Errorf("line %#x: node %d holds line but is not a recorded sharer", la, r.node)
			}
		}
	case dirOwned:
		if s.l2s[e.owner].Lookup(la) != cache.Owned {
			return fmt.Errorf("line %#x: directory says owned@%d but that cache holds %v",
				la, e.owner, s.l2s[e.owner].Lookup(la))
		}
		for _, r := range run {
			if e.sharers&(1<<uint(r.node)) == 0 {
				return fmt.Errorf("line %#x: node %d holds owned line but is not recorded", la, r.node)
			}
		}
	case dirUncached:
		return fmt.Errorf("line %#x: directory says uncached but cached at %v", la, runNodes(run))
	}
	return nil
}

func runStates(run []presenceRec) []cache.State {
	states := make([]cache.State, len(run))
	for i, r := range run {
		states[i] = r.st
	}
	return states
}

func runNodes(run []presenceRec) []int {
	nodes := make([]int, len(run))
	for i, r := range run {
		nodes[i] = r.node
	}
	return nodes
}

// DirectorySize returns the number of tracked lines (diagnostics).
func (s *System) DirectorySize() int { return s.dir.len() }

// ResetStats clears protocol, fabric, memory and per-L2 counters while
// preserving cache contents — used at epoch boundaries.
func (s *System) ResetStats() {
	s.Stats = Stats{}
	s.fabric.Reset()
	s.mem.Reset()
	for _, l2 := range s.l2s {
		l2.Stats.Reset()
	}
}

// AggregateL2HitRate returns the hit rate across a set of nodes, the
// feedback metric §III-B uses for dynamic threshold estimation ("the L2
// cache hit rate of both the OS and user processors, averaged together").
func (s *System) AggregateL2HitRate(nodes []int) float64 {
	var hits, accesses uint64
	for _, n := range nodes {
		hits += s.l2s[n].Stats.Hits.Value()
		accesses += s.l2s[n].Stats.Accesses.Value()
	}
	return stats.Ratio(hits, accesses)
}
