package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	m := Default()
	m.ClockGHz = 0
	if m.Validate() == nil {
		t.Fatal("zero clock accepted")
	}
	m = Default()
	m.OSActiveW = -1
	if m.Validate() == nil {
		t.Fatal("negative power accepted")
	}
}

func TestEvaluateRejectsDegenerateActivity(t *testing.T) {
	m := Default()
	if _, err := m.Evaluate(Activity{ElapsedCycles: 0, UserCores: 1}); err == nil {
		t.Fatal("zero cycles accepted")
	}
	if _, err := m.Evaluate(Activity{ElapsedCycles: 100, UserCores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestSingleActiveCoreEnergy(t *testing.T) {
	m := Model{ClockGHz: 1, UserActiveW: 10, UserIdleW: 1, OSActiveW: 5, OSIdleW: 0.5}
	// 1e9 cycles at 1 GHz = 1 second fully active.
	r, err := m.Evaluate(Activity{ElapsedCycles: 1_000_000_000, UserCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Seconds-1) > 1e-9 {
		t.Fatalf("seconds = %v", r.Seconds)
	}
	if math.Abs(r.Joules-10) > 1e-9 {
		t.Fatalf("joules = %v, want 10", r.Joules)
	}
	if math.Abs(r.EDP-10) > 1e-9 {
		t.Fatalf("EDP = %v", r.EDP)
	}
	if math.Abs(r.AvgWatts-10) > 1e-9 {
		t.Fatalf("watts = %v", r.AvgWatts)
	}
}

func TestIdleCyclesSaveEnergy(t *testing.T) {
	m := Model{ClockGHz: 1, UserActiveW: 10, UserIdleW: 1}
	busy, _ := m.Evaluate(Activity{ElapsedCycles: 1e9, UserCores: 1})
	halfIdle, _ := m.Evaluate(Activity{ElapsedCycles: 1e9, UserCores: 1, UserIdleCycles: 5e8})
	if halfIdle.Joules >= busy.Joules {
		t.Fatalf("idle run (%v J) not cheaper than busy run (%v J)", halfIdle.Joules, busy.Joules)
	}
	// Half the time at 10 W, half at 1 W -> 5.5 J.
	if math.Abs(halfIdle.Joules-5.5) > 1e-9 {
		t.Fatalf("joules = %v, want 5.5", halfIdle.Joules)
	}
}

func TestOSCoreAddsIdleFloor(t *testing.T) {
	m := Model{ClockGHz: 1, UserActiveW: 10, UserIdleW: 1, OSActiveW: 4, OSIdleW: 0.5}
	without, _ := m.Evaluate(Activity{ElapsedCycles: 1e9, UserCores: 1})
	with, _ := m.Evaluate(Activity{ElapsedCycles: 1e9, UserCores: 1, HasOSCore: true})
	if math.Abs((with.Joules-without.Joules)-0.5) > 1e-9 {
		t.Fatalf("idle OS core added %v J, want 0.5", with.Joules-without.Joules)
	}
}

func TestMigrationEnergyCounted(t *testing.T) {
	m := Model{ClockGHz: 1, UserActiveW: 1, MigrationNJ: 100}
	none, _ := m.Evaluate(Activity{ElapsedCycles: 1e6, UserCores: 1})
	many, _ := m.Evaluate(Activity{ElapsedCycles: 1e6, UserCores: 1, Migrations: 1000})
	// 1000 migrations x 2 one-ways x 100 nJ = 0.2 mJ.
	if math.Abs((many.Joules-none.Joules)-2e-4) > 1e-12 {
		t.Fatalf("migration energy = %v J", many.Joules-none.Joules)
	}
}

func TestOffloadEnergyWin(t *testing.T) {
	// The asymmetric-CMP argument: a user core that sleeps while a
	// cheaper OS core works can save energy even at equal runtime.
	m := Default()
	baseline, _ := m.Evaluate(Activity{ElapsedCycles: 1e9, UserCores: 1})
	offload, _ := m.Evaluate(Activity{
		ElapsedCycles:  1e9,
		UserCores:      1,
		UserIdleCycles: 4e8, // 40% of time waiting on the OS core
		OSBusyCycles:   4e8,
		HasOSCore:      true,
		Migrations:     10000,
	})
	if offload.Joules >= baseline.Joules {
		t.Fatalf("off-loading (%v J) should beat all-active baseline (%v J) under asymmetric power",
			offload.Joules, baseline.Joules)
	}
}

func TestClampsExcessCycles(t *testing.T) {
	m := Default()
	// Idle/busy beyond the elapsed horizon must clamp, not go negative.
	r, err := m.Evaluate(Activity{
		ElapsedCycles: 1000, UserCores: 1,
		UserIdleCycles: 5000, OSBusyCycles: 5000, HasOSCore: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Joules < 0 {
		t.Fatalf("negative energy: %v", r.Joules)
	}
}

// Property: energy is non-negative and increases with active fraction.
func TestQuickEnergyMonotoneInActivity(t *testing.T) {
	m := Default()
	f := func(elapsed uint32, idleFrac uint8) bool {
		e := uint64(elapsed)%1e6 + 1000
		idleA := uint64(float64(e) * float64(idleFrac%100) / 100)
		idleB := idleA / 2 // less idle = more active
		a, errA := m.Evaluate(Activity{ElapsedCycles: e, UserCores: 1, UserIdleCycles: idleA})
		b, errB := m.Evaluate(Activity{ElapsedCycles: e, UserCores: 1, UserIdleCycles: idleB})
		if errA != nil || errB != nil {
			return false
		}
		return a.Joules >= 0 && b.Joules+1e-12 >= a.Joules
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
