// Package energy implements the extension the paper defers to future work
// ("we plan to study the applicability of the predictor for OS energy
// optimizations"): a simple core-level energy model in the spirit of
// Mogul et al., where the OS core is a smaller, lower-power design and
// the user core can enter a low-power state while its work executes
// remotely.
//
// The model is deliberately coarse — per-core active/idle power plus a
// per-migration energy charge — because the paper provides no energy
// numbers to validate against; it exists so the decision machinery can be
// driven by an EDP-style objective and so ablations can ask "when does
// off-loading save energy even when it does not save time?".
package energy

import "fmt"

// Model holds the power parameters. Units are watts at the configured
// clock; defaults use relative magnitudes from the asymmetric-CMP
// literature (OS core ~1/3 the power of the user core, idle ~1/10 of
// active).
type Model struct {
	// ClockGHz converts cycles to seconds.
	ClockGHz float64
	// UserActiveW is the user core's power while executing or busy-waiting.
	UserActiveW float64
	// UserIdleW is the user core's power in its low-power wait state.
	UserIdleW float64
	// OSActiveW is the (simpler) OS core's active power.
	OSActiveW float64
	// OSIdleW is the OS core's idle power.
	OSIdleW float64
	// MigrationNJ is the energy of one one-way migration, in nanojoules
	// (interrupt delivery, state writeback and reload).
	MigrationNJ float64
}

// Default returns the reference model: a 3.5 GHz user core at 8 W against
// an OS core at 2.5 W, idle states at roughly a tenth of active.
func Default() Model {
	return Model{
		ClockGHz:    3.5,
		UserActiveW: 8.0,
		UserIdleW:   0.8,
		OSActiveW:   2.5,
		OSIdleW:     0.3,
		MigrationNJ: 60,
	}
}

// Validate rejects non-positive clock and negative powers.
func (m Model) Validate() error {
	if m.ClockGHz <= 0 {
		return fmt.Errorf("energy: non-positive clock %v", m.ClockGHz)
	}
	for name, w := range map[string]float64{
		"UserActiveW": m.UserActiveW, "UserIdleW": m.UserIdleW,
		"OSActiveW": m.OSActiveW, "OSIdleW": m.OSIdleW, "MigrationNJ": m.MigrationNJ,
	} {
		if w < 0 {
			return fmt.Errorf("energy: negative %s", name)
		}
	}
	return nil
}

// Activity is the cycle accounting of one run, as produced by the
// simulator.
type Activity struct {
	// ElapsedCycles is the run's wall-clock length in cycles.
	ElapsedCycles uint64
	// UserCores is the number of user cores.
	UserCores int
	// UserIdleCycles is the total low-power-eligible user-core cycles
	// (summed across user cores).
	UserIdleCycles uint64
	// OSBusyCycles is the OS core's busy time (0 without an OS core).
	OSBusyCycles uint64
	// HasOSCore says whether an OS core exists (and so burns idle power
	// when unused).
	HasOSCore bool
	// Migrations is the number of off-loads (each costs two one-way
	// transfers).
	Migrations uint64
}

// Report is the evaluated energy outcome.
type Report struct {
	// Seconds is the run's duration.
	Seconds float64
	// Joules is the total energy across all cores and migrations.
	Joules float64
	// EDP is the energy-delay product (J·s), the paper's metric of
	// interest for the energy extension.
	EDP float64
	// AvgWatts is Joules/Seconds.
	AvgWatts float64
}

// Evaluate computes the energy report for one run.
func (m Model) Evaluate(a Activity) (Report, error) {
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	if a.ElapsedCycles == 0 {
		return Report{}, fmt.Errorf("energy: zero elapsed cycles")
	}
	if a.UserCores < 1 {
		return Report{}, fmt.Errorf("energy: no user cores")
	}
	hz := m.ClockGHz * 1e9
	seconds := float64(a.ElapsedCycles) / hz

	// User cores: idle cycles at idle power, everything else active.
	totalUserCycles := float64(a.UserCores) * float64(a.ElapsedCycles)
	idle := float64(a.UserIdleCycles)
	if idle > totalUserCycles {
		idle = totalUserCycles
	}
	joules := (totalUserCycles-idle)/hz*m.UserActiveW + idle/hz*m.UserIdleW

	// OS core: busy at active power, remainder idle.
	if a.HasOSCore {
		busy := float64(a.OSBusyCycles)
		if busy > float64(a.ElapsedCycles) {
			busy = float64(a.ElapsedCycles)
		}
		joules += busy/hz*m.OSActiveW + (float64(a.ElapsedCycles)-busy)/hz*m.OSIdleW
	}

	// Migrations: two one-way transfers each.
	joules += float64(a.Migrations) * 2 * m.MigrationNJ * 1e-9

	return Report{
		Seconds:  seconds,
		Joules:   joules,
		EDP:      joules * seconds,
		AvgWatts: joules / seconds,
	}, nil
}
