package energy

import (
	"math"
	"testing"
)

// TestEvaluateEdgeTable pins the clamping and accounting rules for the
// degenerate activity shapes epoch-based runs produce: idle counts that
// overshoot the elapsed window (the model clamps instead of going
// negative), OS-core busy time past the epoch end, configurations with
// no OS core at all, and migration-free runs.
func TestEvaluateEdgeTable(t *testing.T) {
	// 1 GHz and power levels chosen so expected joules are exact decimals.
	m := Model{ClockGHz: 1, UserActiveW: 10, UserIdleW: 1, OSActiveW: 4, OSIdleW: 0.5, MigrationNJ: 50}
	const cyc = 1_000_000_000 // 1 second at 1 GHz

	cases := []struct {
		name       string
		a          Activity
		wantJoules float64
	}{
		{
			// Idle beyond the window clamps to the window: all idle, not
			// negative active time.
			name:       "idle epoch overshoot clamps",
			a:          Activity{ElapsedCycles: cyc, UserCores: 1, UserIdleCycles: 3 * cyc},
			wantJoules: 1,
		},
		{
			name:       "fully idle epoch",
			a:          Activity{ElapsedCycles: cyc, UserCores: 1, UserIdleCycles: cyc},
			wantJoules: 1,
		},
		{
			// Without an OS core, OS fields must contribute nothing even
			// if a buggy caller fills them in.
			name:       "no OS core ignores OS cycles",
			a:          Activity{ElapsedCycles: cyc, UserCores: 1, OSBusyCycles: cyc},
			wantJoules: 10,
		},
		{
			// An idle OS core still burns its idle power for the window.
			name:       "present idle OS core",
			a:          Activity{ElapsedCycles: cyc, UserCores: 1, HasOSCore: true},
			wantJoules: 10.5,
		},
		{
			// OS busy time past the epoch end clamps to the epoch.
			name:       "OS busy overshoot clamps",
			a:          Activity{ElapsedCycles: cyc, UserCores: 1, HasOSCore: true, OSBusyCycles: 5 * cyc},
			wantJoules: 14,
		},
		{
			name:       "zero migrations add nothing",
			a:          Activity{ElapsedCycles: cyc, UserCores: 2, Migrations: 0},
			wantJoules: 20,
		},
		{
			// Each migration charges two one-way transfers: 1e6 * 2 * 50 nJ = 0.1 J.
			name:       "migration energy is two one-ways each",
			a:          Activity{ElapsedCycles: cyc, UserCores: 2, Migrations: 1_000_000},
			wantJoules: 20.1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := m.Evaluate(tc.a)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r.Joules-tc.wantJoules) > 1e-9 {
				t.Fatalf("Joules = %v, want %v", r.Joules, tc.wantJoules)
			}
			if math.Abs(r.EDP-r.Joules*r.Seconds) > 1e-9 {
				t.Fatalf("EDP %v inconsistent with J*s = %v", r.EDP, r.Joules*r.Seconds)
			}
			if math.Abs(r.AvgWatts-r.Joules/r.Seconds) > 1e-9 {
				t.Fatalf("AvgWatts %v inconsistent with J/s", r.AvgWatts)
			}
		})
	}
}
