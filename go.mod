module offloadsim

go 1.22
