package offloadsim_test

import (
	"testing"

	"offloadsim"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want offloadsim.PolicyKind
		ok   bool
	}{
		{"baseline", offloadsim.Baseline, true},
		{"none", offloadsim.Baseline, true},
		{"si", offloadsim.StaticInstrumentation, true},
		{"SI", offloadsim.StaticInstrumentation, true},
		{"static", offloadsim.StaticInstrumentation, true},
		{"di", offloadsim.DynamicInstrumentation, true},
		{"DI", offloadsim.DynamicInstrumentation, true},
		{"dynamic", offloadsim.DynamicInstrumentation, true},
		{"hi", offloadsim.HardwarePredictor, true},
		{"HI", offloadsim.HardwarePredictor, true},
		{"hardware", offloadsim.HardwarePredictor, true},
		{"oracle", offloadsim.OraclePolicy, true},
		{"Oracle", offloadsim.OraclePolicy, true},
		{"BASELINE", offloadsim.Baseline, true},
		{"  hi  ", offloadsim.HardwarePredictor, true}, // surrounding space tolerated
		{"", 0, false},
		{"h1", 0, false},
		{"hardwired", 0, false},
		{"sii", 0, false},
		{"base line", 0, false},
	}
	for _, c := range cases {
		got, ok := offloadsim.ParsePolicy(c.in)
		if ok != c.ok {
			t.Errorf("ParsePolicy(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParsePolicyRoundTrip: every Kind's String() form parses back to
// itself, so CLI output can be fed back in as input.
func TestParsePolicyRoundTrip(t *testing.T) {
	kinds := []offloadsim.PolicyKind{
		offloadsim.Baseline,
		offloadsim.StaticInstrumentation,
		offloadsim.DynamicInstrumentation,
		offloadsim.HardwarePredictor,
		offloadsim.OraclePolicy,
	}
	for _, k := range kinds {
		got, ok := offloadsim.ParsePolicy(k.String())
		if !ok || got != k {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", k.String(), got, ok, k)
		}
	}
}

// TestConfigKeyFacade spot-checks the facade-level canonical hash: the
// thorough equivalence-class coverage lives in internal/sim.
func TestConfigKeyFacade(t *testing.T) {
	prof, ok := offloadsim.WorkloadByName("apache")
	if !ok {
		t.Fatal("apache profile missing")
	}
	a := offloadsim.DefaultConfig(prof)
	b := offloadsim.DefaultConfig(prof)
	ka, err := offloadsim.ConfigKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := offloadsim.ConfigKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("identical configs produced different keys: %s vs %s", ka, kb)
	}
	b.Seed = 99
	kb, err = offloadsim.ConfigKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Error("different seeds produced the same key")
	}
	if _, err := offloadsim.Canonicalize(a); err != nil {
		t.Errorf("Canonicalize(default config): %v", err)
	}
}
