// Package offloadsim is a trace-driven multi-core simulator reproducing
// "Improving Server Performance on Multi-Cores via Selective Off-loading
// of OS Functionality" (Nellans, Sudan, Brunvand, Balasubramonian;
// WIOSCA/ISCA 2010).
//
// The paper proposes a small hardware predictor of OS invocation
// run-length: at every transition to privileged mode, the core XOR-hashes
// PSTATE, g0, g1, i0 and i1 into a 64-bit "AState", looks it up in a
// ~2 KB table, and off-loads the invocation to a dedicated OS core when
// the predicted length exceeds a dynamically tuned threshold N. This
// module rebuilds the entire evaluation stack in pure Go: in-order
// SPARC-flavoured cores, private L1/L2 hierarchies kept coherent by a
// directory MESI protocol, synthetic server/compute workloads, the
// predictor and its software competitors (static and dynamic
// instrumentation), the epoch-based threshold tuner, and runners for
// every table and figure in the paper.
//
// # Quick start
//
//	prof, _ := offloadsim.WorkloadByName("apache")
//	cfg := offloadsim.DefaultConfig(prof)
//	cfg.Policy = offloadsim.HardwarePredictor
//	cfg.Threshold = 100
//	cfg.Migration = offloadsim.Aggressive()
//	res, err := offloadsim.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("throughput %.4f, off-load rate %.2f\n", res.Throughput, res.OffloadRate)
//
// Compare against the single-core baseline by running the same config
// with Policy set to Baseline and dividing throughputs.
//
// # Layout
//
// The paper's contribution (predictor, decision engine, dynamic-N tuner)
// lives in internal/core; every substrate has its own internal package
// (cache, coherence, cpu, trace, workloads, migration, policy, sim);
// internal/experiments regenerates the paper's tables and figures. This
// root package is the stable public surface over those internals.
package offloadsim
