// Parallel-engine bench trajectory: `make bench-parallel`
// (OFFLOADSIM_BENCH_PARALLEL=BENCH_parallel.json go test -run
// TestWriteBenchParallelJSON) measures the eight-simulated-core apache
// configuration on the serial detailed engine and on the quantum-
// parallel engine at 1/2/4/8 workers, and writes BENCH_parallel.json.
// The recorded speedup is serial wall time over parallel wall time at
// the host's best worker count; it scales with free host cores, so the
// committed file also records the host CPU count the numbers were taken
// on.
package offloadsim_test

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"

	"offloadsim/internal/enginebench"
)

// parallelBenchFile is the recorded shape of one bench-parallel run.
type parallelBenchFile struct {
	Description string `json:"description"`
	HostCPUs    int    `json:"host_cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	// SerialInstrsPerS is the serial detailed engine on the identical
	// eight-core configuration.
	SerialInstrsPerS float64 `json:"serial_sim_instrs_per_sec"`
	// ParallelInstrsPerS maps worker count -> simulated instructions
	// per wall second on the parallel engine.
	ParallelInstrsPerS map[string]float64 `json:"parallel_sim_instrs_per_sec"`
	// BestWorkers is the worker count with the highest throughput.
	BestWorkers int `json:"best_workers"`
	// Speedup is best-parallel over serial throughput.
	Speedup float64 `json:"speedup"`
}

// BenchmarkEngineParallelRun is the root view of the end-to-end
// parallel-engine benchmark at the default worker count.
func BenchmarkEngineParallelRun(b *testing.B) { enginebench.ParallelRun(b) }

// BenchmarkEngineSerialMulticoreRun is its serial reference.
func BenchmarkEngineSerialMulticoreRun(b *testing.B) { enginebench.SerialMulticoreRun(b) }

// TestWriteBenchParallelJSON is the engine of `make bench-parallel`. It
// is a no-op unless OFFLOADSIM_BENCH_PARALLEL names the output file, so
// plain `go test` stays fast.
func TestWriteBenchParallelJSON(t *testing.T) {
	path := os.Getenv("OFFLOADSIM_BENCH_PARALLEL")
	if path == "" {
		t.Skip("set OFFLOADSIM_BENCH_PARALLEL=<file> to run the parallel bench")
	}
	serial := testing.Benchmark(enginebench.SerialMulticoreRun)
	out := parallelBenchFile{
		Description:        "8-simulated-core apache/HI run: serial detailed engine vs quantum-parallel engine per worker count",
		HostCPUs:           runtime.NumCPU(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		SerialInstrsPerS:   serial.Extra["sim_instrs/s"],
		ParallelInstrsPerS: map[string]float64{},
	}
	best := 0.0
	for _, workers := range []int{1, 2, 4, 8} {
		r := testing.Benchmark(enginebench.ParallelRunWorkers(workers))
		v := r.Extra["sim_instrs/s"]
		out.ParallelInstrsPerS[strconv.Itoa(workers)] = v
		if v > best {
			best = v
			out.BestWorkers = workers
		}
	}
	if out.SerialInstrsPerS > 0 {
		out.Speedup = best / out.SerialInstrsPerS
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: serial %.2fM instrs/s, best parallel %.2fM at %d workers (%.2fx) on %d host CPUs",
		path, out.SerialInstrsPerS/1e6, best/1e6, out.BestWorkers, out.Speedup, out.HostCPUs)
}
