// Fleet bench trajectory: `make bench-cluster`
// (OFFLOADSIM_BENCH_CLUSTER=BENCH_cluster.json go test -run
// TestWriteBenchClusterJSON) runs the same 64-point sweep through
// POST /v1/sweeps against a 1-replica and a 3-replica in-process fleet
// and records points-per-second for each. The fleets run on one host,
// so the 3-replica number only beats the single replica when free
// cores exist — the file records the host CPU count for that reason
// (same convention as BENCH_parallel.json).
package offloadsim_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"offloadsim/internal/cluster"
	"offloadsim/internal/server"
)

// clusterBenchFile is the recorded shape of one bench-cluster run.
type clusterBenchFile struct {
	Description string `json:"description"`
	HostCPUs    int    `json:"host_cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Points      int    `json:"points"`
	// WorkersPerReplica is each replica's worker-pool size (identical in
	// both configurations; the fleet's advantage is having more pools).
	WorkersPerReplica int `json:"workers_per_replica"`
	// PointsPerS maps replica count -> sweep grid points per wall
	// second, end to end through POST /v1/sweeps.
	PointsPerS map[string]float64 `json:"sweep_points_per_sec"`
	// Speedup is 3-replica over 1-replica throughput.
	Speedup float64 `json:"speedup"`
}

// benchSweepBody is a 64-point grid (2 workloads x 2 policies x 4
// thresholds x 4 latencies) with normalization off, so both
// configurations execute exactly 64 simulations.
const benchSweepBody = `{
	"workloads": ["apache", "derby"],
	"policies": ["HI", "SI"],
	"thresholds": [50, 100, 150, 200],
	"latencies": [50, 100, 150, 200],
	"warmup_instrs": 0,
	"measure_instrs": 400000,
	"seed": 1,
	"normalize": false,
	"concurrency": 12
}`

// startBenchFleet boots n in-process replicas on loopback listeners and
// returns the base URLs plus a shutdown func.
func startBenchFleet(t *testing.T, n, workers int) ([]string, func()) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}
	var stops []func()
	for i := 0; i < n; i++ {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		mem, err := cluster.ParseMembership(addrs[i], peers)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Options{
			QueueSize: 256,
			Workers:   workers,
			Cluster:   server.ClusterOptions{Membership: mem, StealThreshold: -1},
		})
		srv.Start()
		httpSrv := &http.Server{Handler: srv.Handler()}
		go func(ln net.Listener) { _ = httpSrv.Serve(ln) }(lns[i])
		stops = append(stops, func() {
			_ = httpSrv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
	}
	return addrs, func() {
		for _, stop := range stops {
			stop()
		}
	}
}

// runClusterBenchSweep POSTs the bench grid to addr and returns wall
// time and the number of successfully streamed points.
func runClusterBenchSweep(t *testing.T, addr string) (time.Duration, int) {
	t.Helper()
	start := time.Now()
	resp, err := http.Post(addr+"/v1/sweeps", "application/json", bytes.NewReader([]byte(benchSweepBody)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	points := 0
	for sc.Scan() {
		var line struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("decoding sweep line: %v", err)
		}
		if line.Status == "done" {
			points++
		} else if line.Status == "failed" {
			t.Fatalf("sweep point failed: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return time.Since(start), points
}

// TestWriteBenchClusterJSON is the engine of `make bench-cluster`. It
// is a no-op unless OFFLOADSIM_BENCH_CLUSTER names the output file, so
// plain `go test` stays fast.
func TestWriteBenchClusterJSON(t *testing.T) {
	path := os.Getenv("OFFLOADSIM_BENCH_CLUSTER")
	if path == "" {
		t.Skip("set OFFLOADSIM_BENCH_CLUSTER=<file> to run the cluster bench")
	}
	workers := runtime.GOMAXPROCS(0) / 3
	if workers < 1 {
		workers = 1
	}
	out := clusterBenchFile{
		Description:       "64-point sweep via POST /v1/sweeps: 1-replica vs 3-replica in-process fleet on one host",
		HostCPUs:          runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		WorkersPerReplica: workers,
		PointsPerS:        map[string]float64{},
	}
	for _, n := range []int{1, 3} {
		addrs, stop := startBenchFleet(t, n, workers)
		wall, points := runClusterBenchSweep(t, addrs[0])
		stop()
		if out.Points == 0 {
			out.Points = points
		}
		if points != out.Points {
			t.Fatalf("%d-replica sweep streamed %d points, want %d", n, points, out.Points)
		}
		out.PointsPerS[fmt.Sprintf("%d", n)] = float64(points) / wall.Seconds()
		t.Logf("%d replica(s): %d points in %v (%.1f points/s)", n, points, wall.Round(time.Millisecond), float64(points)/wall.Seconds())
	}
	if v := out.PointsPerS["1"]; v > 0 {
		out.Speedup = out.PointsPerS["3"] / v
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1f -> %.1f points/s (%.2fx) on %d host CPUs",
		path, out.PointsPerS["1"], out.PointsPerS["3"], out.Speedup, out.HostCPUs)
}
