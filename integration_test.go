package offloadsim_test

import (
	"testing"

	"offloadsim"
)

// Integration tests: paper-level properties that only hold when every
// substrate (workloads, caches, coherence, migration, predictor, policy)
// composes correctly. Budgets are kept moderate so the suite stays fast;
// the full-scale numbers live in EXPERIMENTS.md.

func runAt(t *testing.T, workload string, kind offloadsim.PolicyKind, n, latency int) offloadsim.Result {
	t.Helper()
	prof, ok := offloadsim.WorkloadByName(workload)
	if !ok {
		t.Fatalf("workload %q missing", workload)
	}
	cfg := offloadsim.DefaultConfig(prof)
	cfg.Policy = kind
	cfg.Threshold = n
	cfg.Migration = offloadsim.CustomMigration(latency)
	cfg.WarmupInstrs = 600_000
	cfg.MeasureInstrs = 600_000
	res, err := offloadsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Off-loading must beat the single-core baseline for the OS-intensive
// server workload when migration is cheap (§V-A's headline direction).
func TestOffloadingBeatsBaselineOnServers(t *testing.T) {
	base := runAt(t, "apache", offloadsim.Baseline, 0, 0)
	hi := runAt(t, "apache", offloadsim.HardwarePredictor, 100, 100)
	if hi.Throughput <= base.Throughput {
		t.Fatalf("HI (%v) did not beat baseline (%v) on apache at cheap migration",
			hi.Throughput, base.Throughput)
	}
}

// Compute-bound workloads barely interact with the OS: off-loading must
// be roughly performance-neutral (§V-A: the compute group clusters near
// 1.0).
func TestComputeWorkloadsNearNeutral(t *testing.T) {
	base := runAt(t, "blackscholes", offloadsim.Baseline, 0, 0)
	hi := runAt(t, "blackscholes", offloadsim.HardwarePredictor, 1000, 100)
	ratio := hi.Throughput / base.Throughput
	if ratio < 0.93 || ratio > 1.15 {
		t.Fatalf("compute workload moved %vx under off-loading; expected ~1.0", ratio)
	}
}

// The N=0 collapse (§V-A): moving *everything*, including the
// register-window traps that write the user stack, must perform worse
// than a small positive threshold even at zero migration cost.
func TestNZeroCollapse(t *testing.T) {
	n0 := runAt(t, "apache", offloadsim.HardwarePredictor, 0, 0)
	n50 := runAt(t, "apache", offloadsim.HardwarePredictor, 50, 0)
	if n0.Throughput >= n50.Throughput {
		t.Fatalf("N=0 (%v) should trail N=50 (%v): trap off-loading ping-pongs the user stack",
			n0.Throughput, n50.Throughput)
	}
}

// Expensive migration must hurt aggressive off-loading (§V-A: "off-loading
// latency is the dominant factor").
func TestMigrationLatencyDominates(t *testing.T) {
	cheap := runAt(t, "apache", offloadsim.HardwarePredictor, 100, 0)
	dear := runAt(t, "apache", offloadsim.HardwarePredictor, 100, 5000)
	if dear.Throughput >= cheap.Throughput {
		t.Fatalf("5000-cycle migration (%v) not worse than free migration (%v)",
			dear.Throughput, cheap.Throughput)
	}
}

// The hardware policy must beat its software twin: DI pays hundreds of
// cycles at every OS entry for the same decisions (§V-B).
func TestHIBeatsDI(t *testing.T) {
	hi := runAt(t, "apache", offloadsim.HardwarePredictor, 100, 100)
	di := runAt(t, "apache", offloadsim.DynamicInstrumentation, 100, 100)
	if hi.Throughput <= di.Throughput {
		t.Fatalf("HI (%v) did not beat DI (%v)", hi.Throughput, di.Throughput)
	}
}

// The predictor-driven policy must approach the perfect-information
// oracle at the same threshold.
func TestHINearOracle(t *testing.T) {
	hi := runAt(t, "apache", offloadsim.HardwarePredictor, 100, 100)
	or := runAt(t, "apache", offloadsim.OraclePolicy, 100, 100)
	if hi.Throughput < or.Throughput*0.90 {
		t.Fatalf("HI (%v) more than 10%% below oracle (%v)", hi.Throughput, or.Throughput)
	}
}

// OS-core utilization must track the workload hierarchy: apache >> derby
// (Table III).
func TestUtilizationHierarchy(t *testing.T) {
	ap := runAt(t, "apache", offloadsim.HardwarePredictor, 100, 1000)
	de := runAt(t, "derby", offloadsim.HardwarePredictor, 100, 1000)
	if ap.OSCoreUtilization <= de.OSCoreUtilization {
		t.Fatalf("apache OS-core utilization (%v) should exceed derby's (%v)",
			ap.OSCoreUtilization, de.OSCoreUtilization)
	}
}

// Off-loaded OS execution must enjoy better locality at the OS core than
// mixed execution gives the baseline: the §I "constructive interference"
// claim, visible as a high OS-core L2 hit rate.
func TestOSCoreLocality(t *testing.T) {
	hi := runAt(t, "apache", offloadsim.HardwarePredictor, 100, 100)
	if hi.OSL2HitRate < 0.6 {
		t.Fatalf("OS core L2 hit rate %v; kernel consolidation should keep it high", hi.OSL2HitRate)
	}
}

// Undershoot must dominate mispredictions: interrupts extend invocations
// beyond their history, they almost never shorten them (§III-A).
func TestMispredictionsUndershoot(t *testing.T) {
	prof, _ := offloadsim.WorkloadByName("apache")
	cfg := offloadsim.DefaultConfig(prof)
	cfg.Policy = offloadsim.HardwarePredictor
	cfg.Threshold = 100
	cfg.WarmupInstrs = 600_000
	cfg.MeasureInstrs = 1_200_000
	cfg.ColdPredictor = true // judge the raw mechanism, no priming
	res, err := offloadsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictorExact+res.PredictorWithin5 < 0.6 {
		t.Fatalf("syscall accuracy %v too low", res.PredictorExact+res.PredictorWithin5)
	}
}
