// Golden-result gate: every configuration in the canonical matrix must
// produce byte-identical sim.Result JSON to the corpus committed under
// testdata/golden/. The corpus was generated at the pre-optimization
// commit of the engine rewrite, so any hot-path change that perturbs a
// single random draw, latency composition or counter shows up here as a
// diff — performance work on a simulator is only trustworthy when its
// results are provably unchanged.
//
// Regenerate with `make golden` (go test -run TestGoldenResults -update).
// Regeneration is legitimate only when a change *intends* to alter
// simulated behaviour (a model fix, a new default); it is never
// legitimate for a performance PR. docs/PERFORMANCE.md has the workflow.
package offloadsim_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"offloadsim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from the current engine (never for a perf PR)")

// goldenWorkloads is the corpus's workload axis: the paper's three server
// workloads plus one compute representative.
var goldenWorkloads = []string{"apache", "specjbb", "derby", "blackscholes"}

// goldenCase is one cell of the matrix.
type goldenCase struct {
	name    string
	sampled bool
	cfg     offloadsim.Config
}

// goldenSampling is a compressed sampling schedule so the sampled cells
// exercise interval switching, warming and extrapolation at corpus scale
// (60 intervals, 6 detailed per run).
func goldenSampling() offloadsim.Sampling {
	s := offloadsim.DefaultSampling()
	s.IntervalInstrs = 10_000
	s.Ratio = 10
	s.WarmupTailInstrs = 100_000
	return s
}

// goldenCases builds the matrix: workload x {baseline, static-N,
// dynamic-N} x {detailed, sampled, parallel}, plus a parallel+sampled
// composition cell per workload on the static-N variant. Dynamic-N has
// no sampled or parallel cell — both combinations are rejected by
// config validation (the epoch tuner's feedback is undefined under
// functional warming and quantum isolation alike). The parallel cells
// run multi-core (the engine's reason to exist) and pin the
// quantum-reconciliation results byte-for-byte: any change to event
// ordering, estimate pricing or the barrier fix-up shows up here.
func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, wl := range goldenWorkloads {
		prof, ok := offloadsim.WorkloadByName(wl)
		if !ok {
			panic("unknown golden workload " + wl)
		}
		base := offloadsim.DefaultConfig(prof)
		base.WarmupInstrs = 200_000
		base.MeasureInstrs = 500_000
		base.Seed = 1

		variants := []struct {
			name string
			mut  func(*offloadsim.Config)
		}{
			{"baseline", func(c *offloadsim.Config) {
				c.Policy = offloadsim.Baseline
				c.Threshold = 0
			}},
			{"static100", func(c *offloadsim.Config) {
				c.Policy = offloadsim.HardwarePredictor
				c.Threshold = 100
			}},
			{"dynamic", func(c *offloadsim.Config) {
				c.Policy = offloadsim.HardwarePredictor
				c.Threshold = 100
				c.DynamicN = true
				c.Tuner = offloadsim.DefaultTunerConfig()
			}},
		}
		for _, v := range variants {
			cfg := base
			v.mut(&cfg)
			cases = append(cases, goldenCase{
				name: fmt.Sprintf("%s_%s_detailed", wl, v.name),
				cfg:  cfg,
			})
			if cfg.DynamicN {
				continue // Sampling/Parallel + DynamicN are rejected by Validate.
			}
			scfg := cfg
			scfg.Sampling = goldenSampling()
			cases = append(cases, goldenCase{
				name:    fmt.Sprintf("%s_%s_sampled", wl, v.name),
				sampled: true,
				cfg:     scfg,
			})
			pcfg := cfg
			pcfg.UserCores = 4
			pcfg.Parallel = offloadsim.DefaultParallel()
			cases = append(cases, goldenCase{
				name: fmt.Sprintf("%s_%s_parallel", wl, v.name),
				cfg:  pcfg,
			})
			if v.name == "static100" {
				pscfg := pcfg
				pscfg.Sampling = goldenSampling()
				cases = append(cases, goldenCase{
					name:    fmt.Sprintf("%s_%s_parallel_sampled", wl, v.name),
					sampled: true,
					cfg:     pscfg,
				})
				// Multi-OS-core cluster cells (docs/OSCORES.md). The K=2
				// synchronous cell pins affinity routing, per-core queueing
				// and backlog rebalancing; the K=4 async cell additionally
				// pins big/little execution scaling, fire-and-forget
				// dispatch with reconciliation pricing, and the
				// queue-depth threshold feedback — the full surface of the
				// heterogeneous off-load model, byte-for-byte.
				o2cfg := cfg
				o2cfg.UserCores = 2
				o2cfg.OSCores = offloadsim.OSCores{Enabled: true, K: 2, Rebalance: true}
				cases = append(cases, goldenCase{
					name: fmt.Sprintf("%s_oscore2_detailed", wl),
					cfg:  o2cfg,
				})
				o4cfg := cfg
				o4cfg.UserCores = 4
				o4cfg.OSCores = offloadsim.OSCores{
					Enabled:   true,
					K:         4,
					Affinity:  "trap=0,identity=0,file=1,network=2,*=3",
					Asymmetry: "1,1,0.5,0.5",
					Async:     true,
					DepthN:    200,
					Rebalance: true,
				}
				cases = append(cases, goldenCase{
					name: fmt.Sprintf("%s_oscore4_async_detailed", wl),
					cfg:  o4cfg,
				})
			}
		}
	}
	return cases
}

// goldenJSON runs one case and renders its Result in the corpus encoding.
func goldenJSON(t testing.TB, gc goldenCase) []byte {
	var (
		res offloadsim.Result
		err error
	)
	if gc.sampled {
		res, _, err = offloadsim.RunSampled(gc.cfg)
	} else {
		res, err = offloadsim.Run(gc.cfg)
	}
	if err != nil {
		t.Fatalf("%s: %v", gc.name, err)
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatalf("%s: encoding result: %v", gc.name, err)
	}
	return append(raw, '\n')
}

func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus is not a -short test")
	}
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for _, gc := range goldenCases() {
		gc := gc
		seen[gc.name+".json"] = true
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(dir, gc.name+".json")
			got := goldenJSON(t, gc)
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `make golden` at a known-good commit): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("result drifted from golden corpus %s\n--- want ---\n%s\n--- got ---\n%s",
					path, want, got)
			}
		})
	}
	// The corpus must not carry stale cells the matrix no longer produces.
	if !*updateGolden {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading corpus dir: %v", err)
		}
		for _, e := range entries {
			if !seen[e.Name()] {
				t.Errorf("stale golden file %s (not produced by the matrix; remove or `make golden`)", e.Name())
			}
		}
	}
}
