package offloadsim

import (
	"io"

	"offloadsim/internal/cluster"
	"offloadsim/internal/coherence"
	"offloadsim/internal/core"
	"offloadsim/internal/cpu"
	"offloadsim/internal/energy"
	"offloadsim/internal/experiments"
	"offloadsim/internal/migration"
	"offloadsim/internal/oscore"
	"offloadsim/internal/policy"
	"offloadsim/internal/sample"
	"offloadsim/internal/sim"
	"offloadsim/internal/telemetry"
	"offloadsim/internal/workloads"
)

// Config describes one simulation run: workload, decision policy,
// threshold, migration engine, core count and measurement budgets.
type Config = sim.Config

// Result is the measured outcome of a run.
type Result = sim.Result

// Simulator is a configured system ready to Run.
type Simulator = sim.Simulator

// Workload is a benchmark profile.
type Workload = workloads.Profile

// PolicyKind selects the off-loading decision mechanism.
type PolicyKind = policy.Kind

// Decision policies, in the paper's Figure 5 vocabulary.
const (
	// Baseline never off-loads: everything runs on the user core.
	Baseline = policy.Baseline
	// StaticInstrumentation (SI) off-loads a profile-selected set of
	// long system calls (Chakraborty et al. style).
	StaticInstrumentation = policy.StaticInstrumentation
	// DynamicInstrumentation (DI) instruments every OS entry in
	// software (Mogul et al. style, broadened per §V-B).
	DynamicInstrumentation = policy.DynamicInstrumentation
	// HardwarePredictor (HI) is the paper's hardware run-length
	// predictor with single-cycle decisions.
	HardwarePredictor = policy.HardwarePredictor
	// OraclePolicy decides on the true run length with zero overhead:
	// the upper bound for any prediction mechanism.
	OraclePolicy = policy.Oracle
)

// MigrationEngine is an off-load transport with a one-way latency.
type MigrationEngine = migration.Engine

// Conservative returns the ~5,000-cycle unmodified-kernel migration.
func Conservative() MigrationEngine { return migration.Conservative() }

// Fast returns the ~3,000-cycle improved software switch.
func Fast() MigrationEngine { return migration.Fast() }

// Aggressive returns the ~100-cycle hardware thread transfer.
func Aggressive() MigrationEngine { return migration.Aggressive() }

// CustomMigration returns an engine with an arbitrary one-way latency.
func CustomMigration(oneWayCycles int) MigrationEngine { return migration.Custom(oneWayCycles) }

// Predictor is the run-length prediction interface (the paper's core
// hardware structure); use it directly to embed the mechanism in other
// systems.
type Predictor = core.Predictor

// Prediction is a predicted run length and its source (local table entry
// or global last-3 average).
type Prediction = core.Prediction

// NewCAMPredictor builds the 200-entry fully-associative organization
// (~2 KB).
func NewCAMPredictor(entries int) Predictor { return core.NewCAMPredictor(entries) }

// NewDirectMappedPredictor builds the 1500-entry tag-less organization
// (~3.3 KB).
func NewDirectMappedPredictor(entries int) Predictor { return core.NewDirectMappedPredictor(entries) }

// DefaultCAMEntries and DefaultDirectMappedEntries are the paper's table
// sizes.
const (
	DefaultCAMEntries          = core.DefaultCAMEntries
	DefaultDirectMappedEntries = core.DefaultDirectMappedEntries
)

// TunerConfig parameterizes the §III-B dynamic threshold estimation.
type TunerConfig = core.TunerConfig

// DefaultTunerConfig returns the paper's epoch parameters (25 M-instruction
// samples, 100 M runs, 1% improvement margin).
func DefaultTunerConfig() TunerConfig { return core.DefaultTunerConfig() }

// DefaultConfig returns a single-user-core Table II configuration for the
// given workload, using the hardware policy at N=1000 over the aggressive
// migration engine.
func DefaultConfig(w *Workload) Config { return sim.DefaultConfig(w) }

// ParsePolicy resolves a policy name or alias (case-insensitive):
// "baseline"/"none", "SI"/"static", "DI"/"dynamic", "HI"/"hardware",
// "oracle". The second result is false for unknown names.
func ParsePolicy(s string) (PolicyKind, bool) { return policy.Parse(s) }

// Canonicalize returns the normalized form of cfg: defaults filled the
// way New fills them, and presentation-only degrees of freedom (engine
// names, uniform per-core workload lists, stale tuner state) erased, so
// equivalent configurations compare equal. Invalid configs are rejected.
func Canonicalize(cfg Config) (Config, error) { return sim.Canonicalize(cfg) }

// ConfigKey returns a stable hex digest identifying the simulation cfg
// describes: two configs share a key iff they canonicalize identically
// (seed included). It is the cache key of the offsimd result cache.
func ConfigKey(cfg Config) (string, error) { return sim.CanonicalKey(cfg) }

// New builds a Simulator, validating the configuration.
func New(cfg Config) (*Simulator, error) { return sim.New(cfg) }

// Run builds and runs a simulation in one step.
func Run(cfg Config) (Result, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}

// Sampling configures interval-sampled execution (Config.Sampling): one
// interval in Sampling.Ratio runs in full detail, the rest keep caches
// and predictors warm at a fraction of the cost, and the detailed
// intervals are extrapolated into a Result.
type Sampling = sim.Sampling

// SamplingReport carries cross-replica per-metric error estimates.
type SamplingReport = sample.Report

// DefaultSampling returns an enabled sampling block with the validated
// default schedule (see docs/SAMPLING.md).
func DefaultSampling() Sampling { return sim.DefaultSampling() }

// RunSampled runs cfg in interval-sampling mode: Sampling.Replicas
// independent replicas replay in parallel and merge deterministically.
// cfg.Sampling must be enabled.
func RunSampled(cfg Config) (Result, SamplingReport, error) { return sample.Run(cfg) }

// Parallel configures quantum-synchronized parallel detailed execution
// (Config.Parallel): simulated cores advance one quantum concurrently
// against private cache state, and cross-core interactions reconcile
// serially at each barrier. Results are byte-identical run-to-run at any
// Workers/GOMAXPROCS, but not bit-identical to the serial engine (see
// docs/PARALLEL.md for the accuracy data).
type Parallel = sim.Parallel

// DefaultParallel returns an enabled parallel block with the default
// quantum; Workers 0 resolves to GOMAXPROCS at run time.
func DefaultParallel() Parallel { return sim.DefaultParallel() }

// RunParallel runs cfg on the parallel detailed engine, enabling
// cfg.Parallel with defaults if the caller left it off. Combine with
// Config.Sampling and RunSampled to compose both accelerations.
func RunParallel(cfg Config) (Result, error) {
	if !cfg.Parallel.Enabled {
		cfg.Parallel = sim.DefaultParallel()
	}
	return Run(cfg)
}

// OSCores configures the multi-OS-core cluster model (Config.OSCores):
// K OS cores with per-syscall-class affinity routing, asymmetric
// big/little speed factors, optional fire-and-forget dispatch for
// side-effect-only classes, queue-depth-aware threshold modulation and
// load rebalancing. A K=1 synchronous symmetric block is exactly the
// classic single-OS-core model and canonicalizes back to disabled. See
// docs/OSCORES.md.
type OSCores = sim.OSCores

// OSCoresReport is the Result block of a multi-OS-core run: per-core
// service metrics, per-class routing statistics and async accounting.
type OSCoresReport = sim.OSCoresProvenance

// MaxOSCores bounds Config.OSCores.K.
const MaxOSCores = sim.MaxOSCores

// DefaultOSCores returns an enabled synchronous k-core block with
// round-robin class affinity and symmetric speeds.
func DefaultOSCores(k int) OSCores { return sim.DefaultOSCores(k) }

// ValidateAffinity checks a syscall-class affinity map ("class=core"
// pairs, "*" wildcard) against an OS-core count — the up-front check CLI
// front ends run before building a Config.
func ValidateAffinity(s string, k int) error {
	_, err := oscore.ParseAffinity(s, k)
	return err
}

// ValidateAsymmetry checks a per-OS-core speed-factor list against an
// OS-core count.
func ValidateAsymmetry(s string, k int) error {
	_, err := oscore.ParseAsymmetry(s, k)
	return err
}

// TelemetryOptions selects what a traced run records: the structured
// event trace (Events) and/or the interval time-series (IntervalInstrs
// cadence). See docs/TELEMETRY.md.
type TelemetryOptions = telemetry.Options

// TraceCapture is one traced run's output: metadata, the merged event
// timeline in deterministic (time, core, seq) order, and the interval
// series.
type TraceCapture = telemetry.Capture

// TraceEvent is one structured simulation event.
type TraceEvent = telemetry.Event

// TraceSink consumes an exported capture (JSONL or Chrome trace-event).
type TraceSink = telemetry.Sink

// TraceIntervalPoint is one interval time-series sample.
type TraceIntervalPoint = telemetry.IntervalPoint

// RunTraced builds and runs a detailed or parallel simulation with
// telemetry attached. Tracing never perturbs the Result: it is
// byte-identical to an untraced Run of the same Config. Sampled mode is
// rejected (no cycle-accurate timeline).
func RunTraced(cfg Config, opts TelemetryOptions) (Result, *TraceCapture, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	trc, err := s.AttachTelemetry(opts)
	if err != nil {
		return Result{}, nil, err
	}
	res := s.Run()
	return res, trc.Capture(), nil
}

// NewJSONLSink writes a capture as newline-delimited JSON: a metadata
// header line, then one object per event in timeline order.
func NewJSONLSink(w io.Writer) TraceSink { return telemetry.NewJSONLSink(w) }

// NewChromeSink writes a capture in the Chrome trace-event format,
// loadable directly in Perfetto or chrome://tracing.
func NewChromeSink(w io.Writer) TraceSink { return telemetry.NewChromeSink(w) }

// ExportTrace streams a capture through a sink.
func ExportTrace(c *TraceCapture, s TraceSink) error { return telemetry.Export(c, s) }

// ReadJSONLTrace parses a JSONL export back into a capture.
func ReadJSONLTrace(r io.Reader) (*TraceCapture, error) { return telemetry.ReadJSONL(r) }

// WriteSeriesCSV writes an interval time-series as CSV.
func WriteSeriesCSV(w io.Writer, series []TraceIntervalPoint) error {
	return telemetry.WriteSeriesCSV(w, series)
}

// SeriesFileName is the canonical per-point file name for a sweep's
// interval time-series CSVs.
func SeriesFileName(workload, policy string, threshold, oneWay int) string {
	return telemetry.SeriesFileName(workload, policy, threshold, oneWay)
}

// SweepRequest is the wire form of offsimd's POST /v1/sweeps: a
// Figure-4-style parameter grid (workloads × policies × thresholds ×
// latencies) the fleet decomposes into canonical-keyed jobs and
// computes exactly once across replicas (docs/CLUSTER.md). Field
// semantics mirror cmd/sweep.
type SweepRequest = cluster.SweepRequest

// SweepRow is one streamed sweep result row, field-for-field identical
// to cmd/sweep's export rows.
type SweepRow = cluster.Row

// SweepPointResult is one NDJSON line of a streaming sweep response:
// grid coordinates, terminal status, and the row on success.
type SweepPointResult = cluster.PointResult

// SweepProgress is GET /v1/sweeps/{id}: a sweep's live accounting.
type SweepProgress = cluster.Progress

// Workloads returns all modeled benchmark profiles: apache, specjbb and
// derby (servers), plus the six-member compute group.
func Workloads() []*Workload { return workloads.All() }

// ServerWorkloads returns the three OS-intensive server profiles.
func ServerWorkloads() []*Workload { return workloads.ServerSet() }

// ComputeWorkloads returns the six compute-bound profiles.
func ComputeWorkloads() []*Workload { return workloads.ComputeSet() }

// WorkloadByName resolves a profile by name ("apache", "specjbb",
// "derby", "blackscholes", "canneal", "fasta_protein", "mummer", "mcf",
// "hmmer").
func WorkloadByName(name string) (*Workload, bool) { return workloads.ByName(name) }

// WorkloadNames lists the available profile names, sorted.
func WorkloadNames() []string { return workloads.Names() }

// ExperimentOptions scales the paper-reproduction runners.
type ExperimentOptions = experiments.Options

// DefaultExperimentOptions returns the standard experiment scale; use
// QuickExperimentOptions for smoke runs.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions returns a reduced scale for fast iteration.
func QuickExperimentOptions() ExperimentOptions { return experiments.QuickOptions() }

// EnergyModel parameterizes the optional energy extension (the paper's
// stated future work): per-core active/idle power on an asymmetric CMP
// plus a per-migration charge.
type EnergyModel = energy.Model

// EnergyReport is the evaluated outcome: joules, seconds, average watts
// and the energy-delay product.
type EnergyReport = energy.Report

// DefaultEnergyModel returns the reference asymmetric-CMP power model
// (8 W user core, 2.5 W OS core, ~10% idle floors, 3.5 GHz).
func DefaultEnergyModel() EnergyModel { return energy.Default() }

// Energy evaluates a run's energy under m, using the cycle accounting the
// simulator recorded (user-core idle during migrations, OS-core busy
// time, migration count).
func Energy(r Result, m EnergyModel) (EnergyReport, error) {
	return m.Evaluate(energy.Activity{
		ElapsedCycles:  r.Cycles,
		UserCores:      r.UserCores,
		UserIdleCycles: r.UserIdleCycles,
		OSBusyCycles:   r.OSBusyCycles,
		HasOSCore:      r.HasOSCore,
		Migrations:     r.Offloads,
	})
}

// CPUConfig sizes a core's front end (L1 caches, fetch width); assign one
// to Config.OSCPU to model the asymmetric-CMP OS core of Mogul et al.
type CPUConfig = cpu.Config

// DefaultCPUConfig returns the Table II core front end (32 KB 2-way L1s).
func DefaultCPUConfig() CPUConfig { return cpu.DefaultConfig() }

// CoherenceProtocol selects MESI (the paper's baseline) or MOESI for
// Config.Coherence.Protocol.
type CoherenceProtocol = coherence.Protocol

// Protocol constants.
const (
	MESI  = coherence.MESI
	MOESI = coherence.MOESI
)

// DefaultCoherenceConfig returns the Table II memory system (private 1 MB
// L2s, directory MESI, 350-cycle memory).
func DefaultCoherenceConfig() coherence.Config { return coherence.DefaultConfig() }
